(* End-to-end rewriting tests: the paper's strong correctness test.

   Every program is compiled, parsed, rewritten (original code bytes
   overwritten with illegal instructions, trampolines installed), and
   executed. The rewritten run must (a) halt, (b) produce identical
   observable output, and (c) execute every basic block exactly as many
   times as a ground-truth profile of the original binary reports. *)

open Icfg_isa
open Icfg_codegen
open Icfg_analysis
open Icfg_core
module Binary = Icfg_obj.Binary
module Vm = Icfg_runtime.Vm
module Runtime_lib = Icfg_runtime.Runtime_lib

let load_base = 0x20000000

let base_config pie =
  let c = Vm.default_config () in
  if pie then { c with Vm.load_base } else c

(* Ground-truth block profile of the original binary. *)
let profile_original ?(pie = false) bin (parse : Parse.t) =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun fa ->
      List.iter
        (fun b -> Hashtbl.replace tbl b.Cfg.b_start 0)
        fa.Parse.fa_cfg.Cfg.blocks)
    parse.Parse.funcs;
  let config = { (base_config pie) with Vm.profile = Some tbl } in
  let r = Vm.run ~config ~routines:(Runtime_lib.standard ()) bin in
  (r, tbl)

type roundtrip = {
  orig : Vm.result;
  rewritten : Vm.result;
  counters : (int, int) Hashtbl.t;
  profile : (int, int) Hashtbl.t;
  rw : Rewriter.t;
  parse : Parse.t;
}

let roundtrip ?(pie = false) ?fm ?(options = Rewriter.default_options) arch prog
    =
  let bin, _ = Compile.compile ~pie arch prog in
  let parse = Parse.parse ?fm bin in
  let rw = Rewriter.rewrite ~options parse in
  let orig, profile = profile_original ~pie bin parse in
  let counters = Hashtbl.create 256 in
  let config = Rewriter.vm_config_for rw (base_config pie) in
  let rewritten =
    Vm.run ~config ~routines:(Rewriter.routines_for rw ~counters) rw.rw_binary
  in
  { orig; rewritten; counters; profile; rw; parse }

let check_outcome name (r : Vm.result) =
  match r.Vm.outcome with
  | Vm.Halted -> ()
  | Vm.Crashed m -> Alcotest.failf "%s crashed: %s" name m

let check_roundtrip name rt =
  check_outcome (name ^ " (original)") rt.orig;
  check_outcome (name ^ " (rewritten)") rt.rewritten;
  Alcotest.(check (list int))
    (name ^ " output") rt.orig.Vm.output rt.rewritten.Vm.output

(* With the counting payload: the rewritten run's per-block counters must
   match the ground-truth profile for every block of every instrumented
   function (instrumentation integrity, section 4.1). *)
let check_counts name rt =
  let instrumented fa =
    fa.Parse.fa_instrumentable
    &&
    match rt.rw.Rewriter.rw_stats.Rewriter.s_funcs_instrumented with _ -> true
  in
  List.iter
    (fun fa ->
      if instrumented fa then
        List.iter
          (fun b ->
            let want =
              Option.value ~default:0 (Hashtbl.find_opt rt.profile b.Cfg.b_start)
            in
            let got =
              Option.value ~default:0 (Hashtbl.find_opt rt.counters b.Cfg.b_start)
            in
            if want <> got then
              Alcotest.failf "%s: block 0x%x executed %d times, counted %d"
                name b.Cfg.b_start want got)
          fa.Parse.fa_cfg.Cfg.blocks)
    rt.parse.Parse.funcs

let counting_options mode =
  { Rewriter.default_options with Rewriter.mode; payload = Rewriter.P_count }

let all_progs =
  [
    ("arith", Test_codegen.prog_arith);
    ("loop", Test_codegen.prog_loop);
    ("calls", Test_codegen.prog_calls);
    ("recursion", Test_codegen.prog_recursion);
    ("switch", Test_codegen.switch_prog Ir.Jt_plain);
    ("switch-spilled", Test_codegen.switch_prog Ir.Jt_spilled_base);
    ("fptr", Test_codegen.prog_fptr);
    ("tailcall", Test_codegen.prog_tailcall);
    ("exceptions", Test_codegen.prog_exceptions);
    ("nested-try", Test_codegen.prog_nested_try);
  ]

let test_mode_matrix mode pie () =
  List.iter
    (fun arch ->
      List.iter
        (fun (pname, prog) ->
          let name =
            Printf.sprintf "%s/%s/%s%s" (Arch.name arch) (Mode.name mode) pname
              (if pie then "/pie" else "")
          in
          let rt = roundtrip ~pie ~options:(counting_options mode) arch prog in
          check_roundtrip name rt;
          check_counts name rt)
        all_progs)
    Arch.all

let test_go_rewriting () =
  List.iter
    (fun arch ->
      List.iter
        (fun mode ->
          let name = Printf.sprintf "%s/go/%s" (Arch.name arch) (Mode.name mode) in
          let rt =
            roundtrip ~options:(counting_options mode) arch Test_codegen.go_prog
          in
          check_roundtrip name rt;
          check_counts name rt;
          Alcotest.(check bool) (name ^ " go hook") true rt.rw.Rewriter.rw_go_hook)
        [ Mode.Dir; Mode.Jt ])
    Arch.all

let test_go_without_ra_translation_fails () =
  (* Without RA translation (and without call emulation), the Go traceback
     sees relocated PCs and panics — the failure the paper's design
     prevents. *)
  List.iter
    (fun arch ->
      let options =
        {
          (counting_options Mode.Jt) with
          Rewriter.ra_translation = false;
          call_emulation = false;
        }
      in
      let rt = roundtrip ~options arch Test_codegen.go_prog in
      match rt.rewritten.Vm.outcome with
      | Vm.Crashed _ -> ()
      | Vm.Halted ->
          Alcotest.failf "%s: expected a go panic without RA translation"
            (Arch.name arch))
    Arch.all

let test_exceptions_without_ra_translation_fail () =
  List.iter
    (fun arch ->
      let options =
        {
          (counting_options Mode.Jt) with
          Rewriter.ra_translation = false;
          call_emulation = false;
        }
      in
      let rt = roundtrip ~options arch Test_codegen.prog_exceptions in
      match rt.rewritten.Vm.outcome with
      | Vm.Crashed _ -> ()
      | Vm.Halted ->
          (* Unwinding by luck is impossible: relocated PCs have no FDEs. *)
          Alcotest.failf "%s: expected unwind failure" (Arch.name arch))
    Arch.all

let test_call_emulation_supports_exceptions () =
  (* SRBI-style call emulation keeps original return addresses on the
     stack, so unwinding works without RA translation. *)
  List.iter
    (fun arch ->
      let options = Rewriter.srbi_like Rewriter.P_count in
      let rt = roundtrip ~options arch Test_codegen.prog_exceptions in
      check_roundtrip (Arch.name arch ^ "/srbi/exceptions") rt;
      check_counts (Arch.name arch ^ "/srbi/exceptions") rt)
    Arch.all

let test_srbi_matrix () =
  List.iter
    (fun arch ->
      List.iter
        (fun (pname, prog) ->
          let name = Printf.sprintf "%s/srbi/%s" (Arch.name arch) pname in
          let rt =
            roundtrip ~fm:Failure_model.srbi
              ~options:(Rewriter.srbi_like Rewriter.P_count) arch prog
          in
          check_roundtrip name rt;
          check_counts name rt)
        [
          ("arith", Test_codegen.prog_arith);
          ("loop", Test_codegen.prog_loop);
          ("calls", Test_codegen.prog_calls);
          ("switch", Test_codegen.switch_prog Ir.Jt_plain);
          ("fptr", Test_codegen.prog_fptr);
        ])
    Arch.all

let test_partial_instrumentation () =
  (* Diogenes-style: instrument a subset; the rest keeps running in the
     original text. *)
  List.iter
    (fun arch ->
      let options =
        { (counting_options Mode.Jt) with Rewriter.only = Some [ "classify" ] }
      in
      let rt =
        roundtrip ~options arch (Test_codegen.switch_prog Ir.Jt_plain)
      in
      check_roundtrip (Arch.name arch ^ "/partial") rt;
      Alcotest.(check int)
        (Arch.name arch ^ " instrumented exactly one")
        1 rt.rw.Rewriter.rw_stats.Rewriter.s_funcs_instrumented;
      (* counters exist only for classify's blocks *)
      let classify = Option.get (Parse.func rt.parse "classify") in
      Hashtbl.iter
        (fun blk _ ->
          Alcotest.(check bool) "counter in classify" true
            (blk >= classify.Parse.fa_sym.Icfg_obj.Symbol.addr
            && blk
               < classify.Parse.fa_sym.Icfg_obj.Symbol.addr
                 + classify.Parse.fa_sym.Icfg_obj.Symbol.size))
        rt.counters)
    Arch.all

let test_uninstrumentable_function_skipped () =
  (* A function with an unresolvable jump table is left in place; everything
     else is still rewritten and the program still works. *)
  List.iter
    (fun arch ->
      let rt =
        roundtrip ~options:(counting_options Mode.Jt) arch
          (Test_codegen.switch_prog Ir.Jt_data_table)
      in
      check_roundtrip (Arch.name arch ^ "/data-table") rt;
      let stats = rt.rw.Rewriter.rw_stats in
      Alcotest.(check bool)
        (Arch.name arch ^ " skipped one function")
        true
        (stats.Rewriter.s_funcs_instrumented < stats.Rewriter.s_funcs_total))
    Arch.all

let test_adjusted_pointer_rewriting () =
  (* Listing 1: &goexit + 1 loaded, adjusted and called; func-ptr mode must
     compensate the slot so the arithmetic lands on the relocated block. *)
  List.iter
    (fun arch ->
      let adj = if arch = Arch.X86_64 then 1 else 4 in
      let rt =
        roundtrip ~options:(counting_options Mode.Func_ptr) arch
          (Test_analysis.go_arith_prog adj)
      in
      check_roundtrip (Arch.name arch ^ "/goarith") rt;
      check_counts (Arch.name arch ^ "/goarith") rt;
      Alcotest.(check bool)
        (Arch.name arch ^ " rewrote slots")
        true
        (rt.rw.Rewriter.rw_stats.Rewriter.s_rewritten_slots >= 1))
    Arch.all

let test_pie_matrix () =
  List.iter
    (fun arch ->
      List.iter
        (fun (pname, prog) ->
          List.iter
            (fun mode ->
              let name =
                Printf.sprintf "%s/pie/%s/%s" (Arch.name arch) (Mode.name mode)
                  pname
              in
              let rt =
                roundtrip ~pie:true ~options:(counting_options mode) arch prog
              in
              check_roundtrip name rt;
              check_counts name rt)
            [ Mode.Jt; Mode.Func_ptr ])
        [
          ("switch", Test_codegen.switch_prog Ir.Jt_plain);
          ("fptr", Test_codegen.prog_fptr);
          ("exceptions", Test_codegen.prog_exceptions);
        ])
    Arch.all

let test_stats_sanity () =
  List.iter
    (fun arch ->
      let rt =
        roundtrip ~options:(counting_options Mode.Jt) arch
          (Test_codegen.switch_prog Ir.Jt_plain)
      in
      let s = rt.rw.Rewriter.rw_stats in
      Alcotest.(check bool) "has trampolines" true (s.Rewriter.s_trampolines > 0);
      Alcotest.(check bool) "cloned the table" true (s.Rewriter.s_cloned_tables = 1);
      Alcotest.(check bool) "grew" true (s.Rewriter.s_new_size > s.Rewriter.s_orig_size);
      Alcotest.(check bool) "cfl <= blocks" true
        (s.Rewriter.s_cfl_blocks <= s.Rewriter.s_blocks))
    Arch.all

let test_cfl_fewer_with_stronger_modes () =
  (* jt removes jump-table target blocks from the CFL set. *)
  List.iter
    (fun arch ->
      let get_cfl mode =
        let rt =
          roundtrip ~options:(counting_options mode) arch
            (Test_codegen.switch_prog Ir.Jt_plain)
        in
        rt.rw.Rewriter.rw_stats.Rewriter.s_cfl_blocks
      in
      let dir = get_cfl Mode.Dir and jt = get_cfl Mode.Jt in
      Alcotest.(check bool)
        (Printf.sprintf "%s: jt (%d) < dir (%d)" (Arch.name arch) jt dir)
        true (jt < dir))
    Arch.all

let test_bounce_reduction () =
  (* The relocated run bounces less in jt mode than dir mode: compare the
     cycle counts (same payload, same binary). *)
  List.iter
    (fun arch ->
      let cycles mode =
        let rt =
          roundtrip
            ~options:{ (counting_options mode) with Rewriter.payload = P_empty }
            arch
            (Test_codegen.switch_prog Ir.Jt_plain)
        in
        check_roundtrip (Arch.name arch ^ "/bounce") rt;
        rt.rewritten.Vm.cycles
      in
      let dir = cycles Mode.Dir and jt = cycles Mode.Jt in
      Alcotest.(check bool)
        (Printf.sprintf "%s: jt cycles (%d) <= dir cycles (%d)" (Arch.name arch)
           jt dir)
        true (jt <= dir))
    Arch.all

let test_ra_map_present () =
  List.iter
    (fun arch ->
      let rt =
        roundtrip ~options:(counting_options Mode.Jt) arch
          Test_codegen.prog_exceptions
      in
      Alcotest.(check bool) "ra map nonempty" true
        (Runtime_lib.Ra_map.size rt.rw.Rewriter.rw_ra_map > 0);
      Alcotest.(check bool) ".ra_map section" true
        (Binary.section rt.rw.Rewriter.rw_binary ".ra_map" <> None);
      Alcotest.(check bool) ".instr section" true
        (Binary.section rt.rw.Rewriter.rw_binary ".instr" <> None);
      (* old dynamic sections renamed *)
      Alcotest.(check bool) "dynsym.old" true
        (Binary.section rt.rw.Rewriter.rw_binary ".dynsym.old" <> None))
    Arch.all

(* Code reordering (section 8.3): reversing function or block emission
   order must preserve behaviour (fall-through edges are materialized). *)
let test_reorder_roundtrips () =
  List.iter
    (fun arch ->
      List.iter
        (fun order ->
          List.iter
            (fun (pname, prog) ->
              let name =
                Printf.sprintf "%s/%s/%s" (Arch.name arch)
                  (match order with
                  | `Reverse_funcs -> "rev-funcs"
                  | `Reverse_blocks -> "rev-blocks")
                  pname
              in
              let options =
                {
                  (counting_options Mode.Jt) with
                  Rewriter.order = (order :> [ `Original | `Reverse_funcs | `Reverse_blocks ]);
                }
              in
              let rt = roundtrip ~options arch prog in
              check_roundtrip name rt;
              check_counts name rt)
            [
              ("loop", Test_codegen.prog_loop);
              ("switch", Test_codegen.switch_prog Ir.Jt_plain);
              ("fptr", Test_codegen.prog_fptr);
              ("exceptions", Test_codegen.prog_exceptions);
              ("recursion", Test_codegen.prog_recursion);
            ])
        [ `Reverse_funcs; `Reverse_blocks ])
    Arch.all

(* Regression: a try range that starts mid-block, with the exception
   unwinding through an indirect-call frame. The RA map must translate the
   caller-frame lookup (ra-1) exactly, or the landing pad is missed. *)
let midblock_try_prog =
  Ir.program ~name:"midblock-try"
    ~features:{ Binary.no_features with Binary.cpp_exceptions = true }
    ~main:"main"
    [
      Ir.func "thrower" [ "x" ]
        [
          Ir.If
            ( Icfg_isa.Insn.Eq,
              Bin (Band, Var "x", Int 3),
              Int 0,
              [ Ir.Throw (Var "x") ],
              [] );
          Ir.Return (Bin (Badd, Var "x", Int 13));
        ];
      Ir.func "catcher" [ "x" ]
        [
          (* the Let makes the try range start mid-block *)
          Ir.Let ("out", Int 0);
          Ir.Try
            ( [
                Ir.Call (Some "r", Via_ptr (Func_addr "thrower"), [ Var "x" ]);
                Ir.Set (Lvar "out", Var "r");
              ],
              "e",
              [ Ir.Set (Lvar "out", Bin (Badd, Var "e", Int 1000)) ] );
          Ir.Return (Var "out");
        ];
      Ir.func "main" []
        [
          Ir.For
            ( "i",
              0,
              9,
              [
                Ir.Call (Some "v", Direct "catcher", [ Var "i" ]);
                Ir.Print (Var "v");
              ] );
          Ir.Return (Int 0);
        ];
    ]

let test_midblock_try_regression () =
  List.iter
    (fun arch ->
      let rt = roundtrip ~options:(counting_options Mode.Jt) arch midblock_try_prog in
      check_roundtrip (Arch.name arch ^ "/midblock-try") rt;
      check_counts (Arch.name arch ^ "/midblock-try") rt;
      (* and SRBI's unemulated indirect calls make exactly this crash on
         x86-64 (the Dyninst-10.2 defect the paper reports) *)
      if arch = Arch.X86_64 then
        let rt' =
          roundtrip ~options:(Rewriter.srbi_like Rewriter.P_count) arch
            midblock_try_prog
        in
        match rt'.rewritten.Vm.outcome with
        | Vm.Crashed _ -> ()
        | Vm.Halted -> Alcotest.fail "srbi should crash on this program")
    Arch.all

(* ppc64le with a large working set: the relocated area is beyond the
   32 MiB short-branch range, so placement must use the 4-instruction long
   sequences (and save/restore where no register is dead) — without traps. *)
let test_ppc_long_trampolines () =
  let prog = Test_codegen.switch_prog Ir.Jt_plain in
  let bin, _ =
    Icfg_codegen.Compile.compile ~bulk_data:(48 * 1024 * 1024) Arch.Ppc64le prog
  in
  let parse = Parse.parse bin in
  let rw =
    Rewriter.rewrite
      ~options:{ Rewriter.default_options with Rewriter.payload = Rewriter.P_count }
      parse
  in
  let s = rw.Rewriter.rw_stats in
  Alcotest.(check bool) "used long trampolines" true (s.Rewriter.s_long_trampolines > 0);
  Alcotest.(check int) "no traps" 0 s.Rewriter.s_trap_trampolines;
  (* and the rewritten binary still runs correctly *)
  let counters = Hashtbl.create 16 in
  let config = Rewriter.vm_config_for rw (Vm.default_config ()) in
  let r =
    Vm.run ~config ~routines:(Rewriter.routines_for rw ~counters) rw.Rewriter.rw_binary
  in
  let orig = Vm.run ~routines:(Runtime_lib.standard ()) bin in
  Alcotest.(check bool) "halted" true (r.Vm.outcome = Vm.Halted);
  Alcotest.(check (list int)) "output" orig.Vm.output r.Vm.output

(* Function-entry instrumentation (the paper's high-level semantics): the
   entry payload must run exactly once per call — no more (even with loops
   around the call), no less. *)
let test_func_entry_granularity () =
  List.iter
    (fun arch ->
      let options =
        {
          (counting_options Mode.Jt) with
          Rewriter.granularity = Rewriter.G_func_entry;
        }
      in
      let rt = roundtrip ~options arch Test_codegen.prog_recursion in
      check_roundtrip (Arch.name arch ^ "/entry-granularity") rt;
      let fib = Option.get (Parse.func rt.parse "fib") in
      let entry = fib.Parse.fa_sym.Icfg_obj.Symbol.addr in
      (* fib 10 makes 177 calls to fib *)
      Alcotest.(check (option int))
        (Arch.name arch ^ " fib called 177 times")
        (Some 177)
        (Hashtbl.find_opt rt.counters entry);
      (* only entry blocks are counted *)
      Hashtbl.iter
        (fun blk _ ->
          Alcotest.(check bool) "counter at a function entry" true
            (match Icfg_obj.Binary.symbol_at rt.rw.Rewriter.rw_binary blk with
            | Some s -> s.Icfg_obj.Symbol.addr = blk
            | None -> false))
        rt.counters)
    Arch.all

(* Sparse placement (the section 4.2 refinement): with entry-only
   instrumentation and the original code preserved, only entry blocks get
   trampolines — far fewer than CFL placement — and entry counts stay
   exact even though execution runs hybrid. *)
let test_sparse_placement () =
  List.iter
    (fun arch ->
      List.iter
        (fun (pname, prog) ->
          let sparse_opts =
            {
              (counting_options Mode.Dir) with
              Rewriter.granularity = Rewriter.G_func_entry;
              overwrite_original = false;
              sparse_placement = true;
            }
          in
          let dense_opts =
            { sparse_opts with Rewriter.sparse_placement = false }
          in
          let name = Printf.sprintf "%s/sparse/%s" (Arch.name arch) pname in
          let sparse = roundtrip ~options:sparse_opts arch prog in
          check_roundtrip name sparse;
          let dense = roundtrip ~options:dense_opts arch prog in
          (* trampolines = number of instrumented functions, and never more
             than dense placement *)
          let s = sparse.rw.Rewriter.rw_stats in
          Alcotest.(check int)
            (name ^ " one trampoline per function")
            s.Rewriter.s_funcs_instrumented s.Rewriter.s_trampolines;
          Alcotest.(check bool)
            (name ^ " fewer than CFL placement")
            true
            (s.Rewriter.s_trampolines
            <= dense.rw.Rewriter.rw_stats.Rewriter.s_trampolines);
          (* entry counts match the dense run's entry counts *)
          List.iter
            (fun fa ->
              if fa.Parse.fa_instrumentable then
                let entry = fa.Parse.fa_sym.Icfg_obj.Symbol.addr in
                Alcotest.(check (option int))
                  (Printf.sprintf "%s entry 0x%x" name entry)
                  (Hashtbl.find_opt dense.counters entry)
                  (Hashtbl.find_opt sparse.counters entry))
            sparse.parse.Parse.funcs)
        [
          ("switch", Test_codegen.switch_prog Ir.Jt_plain);
          ("fptr", Test_codegen.prog_fptr);
          ("recursion", Test_codegen.prog_recursion);
        ])
    Arch.all;
  (* misuse is rejected *)
  let bad =
    {
      Rewriter.default_options with
      Rewriter.sparse_placement = true;
      overwrite_original = true;
      granularity = Rewriter.G_func_entry;
    }
  in
  let bin, _ =
    Icfg_codegen.Compile.compile Arch.X86_64 Test_codegen.prog_loop
  in
  match Rewriter.rewrite ~options:bad (Parse.parse bin) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sparse placement over destroyed code must be rejected"

(* frdwarf-style unwinding (sections 2.3/6): RA translation is agnostic to
   the unwinder implementation, and the compiled recipes are cheaper. *)
let test_compiled_unwind_compat () =
  let arch = Arch.X86_64 in
  let bin, _ = Icfg_codegen.Compile.compile arch Test_codegen.prog_exceptions in
  let parse = Parse.parse bin in
  let rw = Rewriter.rewrite ~options:(counting_options Mode.Jt) parse in
  let run compiled =
    let config =
      Rewriter.vm_config_for rw
        { (Vm.default_config ()) with Vm.compiled_unwind = compiled }
    in
    Vm.run ~config
      ~routines:(Rewriter.routines_for rw ~counters:(Hashtbl.create 4))
      rw.Rewriter.rw_binary
  in
  let dwarf = run false and fast = run true in
  Alcotest.(check bool) "both halt" true
    (dwarf.Vm.outcome = Vm.Halted && fast.Vm.outcome = Vm.Halted);
  Alcotest.(check (list int)) "same output" dwarf.Vm.output fast.Vm.output;
  Alcotest.(check bool) "same unwind steps" true
    (dwarf.Vm.unwind_steps = fast.Vm.unwind_steps && dwarf.Vm.unwind_steps > 0);
  Alcotest.(check bool)
    (Printf.sprintf "compiled unwinding cheaper (%d < %d)" fast.Vm.cycles
       dwarf.Vm.cycles)
    true (fast.Vm.cycles < dwarf.Vm.cycles)

(* overwrite_original = false leaves original bytes intact: the rewritten
   binary must still behave identically (trampolines shadow the entries). *)
let test_no_overwrite_mode () =
  List.iter
    (fun arch ->
      let options =
        { (counting_options Mode.Jt) with Rewriter.overwrite_original = false }
      in
      let rt = roundtrip ~options arch (Test_codegen.switch_prog Ir.Jt_plain) in
      check_roundtrip (Arch.name arch ^ "/no-overwrite") rt)
    Arch.all

let suite =
  [
    ( "rewriter:modes",
      [
        Alcotest.test_case "dir matrix" `Quick (test_mode_matrix Mode.Dir false);
        Alcotest.test_case "jt matrix" `Quick (test_mode_matrix Mode.Jt false);
        Alcotest.test_case "func-ptr matrix" `Quick
          (test_mode_matrix Mode.Func_ptr false);
        Alcotest.test_case "PIE matrix" `Quick test_pie_matrix;
      ] );
    ( "rewriter:unwinding",
      [
        Alcotest.test_case "go rewriting" `Quick test_go_rewriting;
        Alcotest.test_case "go panics without RA translation" `Quick
          test_go_without_ra_translation_fails;
        Alcotest.test_case "exceptions fail without RA translation" `Quick
          test_exceptions_without_ra_translation_fail;
        Alcotest.test_case "call emulation supports exceptions" `Quick
          test_call_emulation_supports_exceptions;
      ] );
    ( "rewriter:baseline-config",
      [ Alcotest.test_case "srbi matrix" `Quick test_srbi_matrix ] );
    ( "rewriter:partial",
      [
        Alcotest.test_case "partial instrumentation" `Quick
          test_partial_instrumentation;
        Alcotest.test_case "uninstrumentable skipped" `Quick
          test_uninstrumentable_function_skipped;
      ] );
    ( "rewriter:func-ptr",
      [
        Alcotest.test_case "adjusted pointer (Listing 1)" `Quick
          test_adjusted_pointer_rewriting;
      ] );
    ( "rewriter:reorder",
      [
        Alcotest.test_case "reversal roundtrips" `Quick test_reorder_roundtrips;
      ] );
    ( "rewriter:regressions",
      [
        Alcotest.test_case "mid-block try + indirect call" `Quick
          test_midblock_try_regression;
        Alcotest.test_case "ppc64le long trampolines" `Quick
          test_ppc_long_trampolines;
        Alcotest.test_case "no-overwrite mode" `Quick test_no_overwrite_mode;
        Alcotest.test_case "function-entry granularity" `Quick
          test_func_entry_granularity;
        Alcotest.test_case "sparse placement (4.2)" `Quick test_sparse_placement;
        Alcotest.test_case "frdwarf-style unwinding" `Quick
          test_compiled_unwind_compat;
      ] );
    ( "rewriter:properties",
      [
        Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
        Alcotest.test_case "cfl shrinks with mode" `Quick
          test_cfl_fewer_with_stronger_modes;
        Alcotest.test_case "bounce reduction" `Quick test_bounce_reduction;
        Alcotest.test_case "ra map and sections" `Quick test_ra_map_present;
      ] );
  ]
