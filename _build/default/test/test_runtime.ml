(* Runtime-layer tests: VM instruction semantics, memory protection, traps,
   the icache model, RA-map properties, re-entrant calls, frame walking and
   the unwinder's corner cases. *)

open Icfg_isa
module Binary = Icfg_obj.Binary
module Section = Icfg_obj.Section
module Symbol = Icfg_obj.Symbol
module Ehframe = Icfg_obj.Ehframe
module Vm = Icfg_runtime.Vm
module Icache = Icfg_runtime.Icache
module Ra_map = Icfg_runtime.Runtime_lib.Ra_map

(* ------------------------------------------------------------------ *)
(* A tiny hand-assembled binary builder                                *)
(* ------------------------------------------------------------------ *)

let text_base = 0x400000

let make_binary ?(arch = Arch.X86_64) ?(extra_sections = []) ?eh_frame insns =
  let buf = Bytes.make 4096 '\000' in
  let pos = ref 0 in
  List.iter
    (fun i -> pos := !pos + Encode.encode_into arch buf ~pos:!pos i)
    insns;
  let text =
    Section.make ~name:".text" ~vaddr:text_base ~perm:Section.r_x
      (Bytes.sub buf 0 (max 16 !pos))
  in
  let data =
    Section.make ~name:".data" ~vaddr:0x500000 ~perm:Section.r_w
      (Bytes.make 256 '\000')
  in
  let rodata =
    Section.make ~name:".rodata" ~vaddr:0x501000 ~perm:Section.r_only
      (Bytes.init 64 (fun i -> Char.chr (i land 0xff)))
  in
  Binary.make ?eh_frame ~name:"hand" ~arch ~entry:text_base
    ~symbols:
      [ Symbol.make ~name:"f" ~addr:text_base ~size:!pos Symbol.Func ]
    ([ text; data; rodata ] @ extra_sections)

let run ?config ?routines insns =
  Vm.run ?config ?routines (make_binary insns)

let expect_output ?(arch = Arch.X86_64) name insns expected =
  let r = Vm.run (make_binary ~arch insns) in
  (match r.Vm.outcome with
  | Vm.Halted -> ()
  | Vm.Crashed m -> Alcotest.failf "%s crashed: %s" name m);
  Alcotest.(check (list int)) name expected r.Vm.output

(* ------------------------------------------------------------------ *)
(* Instruction semantics                                               *)
(* ------------------------------------------------------------------ *)

let r0 = Reg.r0
let r1 = Reg.r1
let r3 = Reg.r3

let test_alu () =
  expect_output "mov/add"
    [ Mov (r0, Imm 5); Add (r0, Imm 7); Out r0; Halt ]
    [ 12 ];
  expect_output "sub/mul"
    [ Mov (r0, Imm 5); Sub (r0, Imm 9); Mul (r0, Imm 3); Out r0; Halt ]
    [ -12 ];
  expect_output "logic"
    [
      Mov (r0, Imm 0b1100);
      And_ (r0, Imm 0b1010);
      Or_ (r0, Imm 1);
      Xor (r0, Imm 0b11);
      Out r0;
      Halt;
    ]
    [ 0b1010 ];
  expect_output "shifts"
    [ Mov (r0, Imm 3); Shl (r0, 4); Shr (r0, 2); Out r0; Halt ]
    [ 12 ];
  expect_output "movhi/orlo"
    [ Movhi (r0, 2); Orlo (r0, 0xABC); Out r0; Halt ]
    [ (2 lsl 16) lor 0xABC ];
  expect_output "reg-to-reg"
    [ Mov (r0, Imm 9); Mov (r1, Reg r0); Add (r1, Reg r0); Out r1; Halt ]
    [ 18 ]

let test_memory () =
  expect_output "store/load via register base"
    [
      Mov (r1, Imm 0x500000);
      Mov (r0, Imm 1234);
      Store (W64, BReg r1, 16, r0);
      Mov (r0, Imm 0);
      Load (W64, r0, BReg r1, 16);
      Out r0;
      Halt;
    ]
    [ 1234 ];
  expect_output "narrow widths sign-extend"
    [
      Mov (r1, Imm 0x500000);
      Mov (r0, Imm 0xFF);
      Store (W8, BReg r1, 0, r0);
      Load (W8, r0, BReg r1, 0);
      Out r0;
      Mov (r0, Imm 0x8000);
      Store (W16, BReg r1, 8, r0);
      Load (W16, r0, BReg r1, 8);
      Out r0;
      Halt;
    ]
    [ -1; -32768 ];
  expect_output "stack push/pop via sp"
    [
      AddSp (-16);
      Mov (r0, Imm 77);
      Store (W64, BSp, 8, r0);
      Mov (r0, Imm 0);
      Load (W64, r0, BSp, 8);
      AddSp 16;
      Out r0;
      Halt;
    ]
    [ 77 ];
  expect_output "loadidx scaling"
    [
      Mov (r1, Imm 0x500000);
      Mov (r0, Imm 111);
      Store (W32, BReg r1, 12, r0);
      Mov (r3, Imm 3);
      LoadIdx (W32, r0, r1, r3, 4);
      Out r0;
      Halt;
    ]
    [ 111 ]

let test_control_flow () =
  (* jmp over a poison instruction *)
  let jlen = Encode.length Arch.X86_64 (Insn.Jmp 0) in
  let poison_len = Encode.length Arch.X86_64 (Insn.Out r0) in
  expect_output "jmp skips"
    [ Mov (r0, Imm 1); Jmp (jlen + poison_len); Out r0; Out r0; Halt ]
    [ 1 ];
  expect_output "jcc taken/not-taken"
    [
      Mov (r0, Imm 5);
      Cmp (r0, Imm 5);
      Jcc (Ne, 1000);
      Out r0;
      Cmp (r0, Imm 4);
      Jcc (Gt, Encode.length Arch.X86_64 (Insn.Jcc (Gt, 0)) + poison_len);
      Out r0;
      Out r0;
      Halt;
    ]
    [ 5; 5 ]

let test_write_protection () =
  let r =
    run [ Mov (r1, Imm 0x501000); Mov (r0, Imm 1); Store (W64, BReg r1, 0, r0); Halt ]
  in
  match r.Vm.outcome with
  | Vm.Crashed m ->
      Alcotest.(check bool) "mentions read-only" true
        (String.length m > 0)
  | Vm.Halted -> Alcotest.fail "expected write-protection crash"

let test_illegal_and_unmapped () =
  (match (run [ Illegal ]).Vm.outcome with
  | Vm.Crashed _ -> ()
  | Vm.Halted -> Alcotest.fail "illegal must crash");
  (match (run [ Mov (r0, Imm 0x10); IndJmp r0 ]).Vm.outcome with
  | Vm.Crashed _ -> ()
  | Vm.Halted -> Alcotest.fail "unmapped jump must crash");
  match (run [ Mov (r1, Imm 0x900000); Load (W64, r0, BReg r1, 0); Halt ]).Vm.outcome with
  | Vm.Crashed _ -> ()
  | Vm.Halted -> Alcotest.fail "unmapped read must crash"

let test_trap_dispatch () =
  (* A trap with a mapping continues at the target; without one it crashes. *)
  let arch = Arch.X86_64 in
  let tlen = Encode.length arch Insn.Trap in
  let olen = Encode.length arch (Insn.Out r0) in
  let target = text_base + Encode.length arch (Insn.Mov (r0, Imm 0)) + tlen + olen in
  let config = Vm.default_config () in
  Hashtbl.replace config.Vm.trap_map
    (text_base + Encode.length arch (Insn.Mov (r0, Imm 0)))
    target;
  let r =
    run ~config [ Mov (r0, Imm 3); Trap; Out r0 (* skipped *); Out r0; Halt ]
  in
  (match r.Vm.outcome with
  | Vm.Halted -> Alcotest.(check (list int)) "trap skipped poison" [ 3 ] r.Vm.output
  | Vm.Crashed m -> Alcotest.failf "crashed: %s" m);
  Alcotest.(check int) "trap counted" 1 r.Vm.trap_hits;
  Alcotest.(check bool) "trap is expensive" true
    (r.Vm.cycles > Vm.default_costs.Vm.trap);
  match (run [ Trap; Halt ]).Vm.outcome with
  | Vm.Crashed _ -> ()
  | Vm.Halted -> Alcotest.fail "unmapped trap must crash"

let test_callrt_unbound () =
  let bin = make_binary [ CallRt 0; Halt ] in
  let bin = { bin with Binary.dynsyms = [| "nosuch.routine" |] } in
  match (Vm.run bin).Vm.outcome with
  | Vm.Crashed m ->
      Alcotest.(check bool) "names the routine" true
        (String.length m > 10)
  | Vm.Halted -> Alcotest.fail "unbound callrt must crash"

let test_callrt_routine () =
  let bin = make_binary [ CallRt 0; Out r0; Halt ] in
  let bin = { bin with Binary.dynsyms = [| "test.set" |] } in
  let routine vm = Vm.set_reg vm r0 4242 in
  let r = Vm.run ~routines:[ ("test.set", routine) ] bin in
  Alcotest.(check (list int)) "routine ran" [ 4242 ] r.Vm.output

let test_timeout () =
  let config = { (Vm.default_config ()) with Vm.max_steps = 1000 } in
  let r = run ~config [ Jmp 0 ] in
  match r.Vm.outcome with
  | Vm.Crashed m -> Alcotest.(check bool) "timeout" true (String.length m > 0)
  | Vm.Halted -> Alcotest.fail "expected timeout"

let test_call_semantics_per_arch () =
  (* On x86-64 the return address goes through the stack; on the RISC
     flavours it goes through the link register. *)
  List.iter
    (fun arch ->
      let call_len = Encode.length arch (Insn.Call 0) in
      let out_len = Encode.length arch (Insn.Out r0) in
      let halt_len = Encode.length arch Insn.Halt in
      (* layout: call f; out; halt; f: mov r0; ret *)
      let insns =
        [
          Insn.Call (call_len + out_len + halt_len);
          Insn.Out r0;
          Insn.Halt;
          Insn.Mov (r0, Imm 31);
          Insn.Ret;
        ]
      in
      let r = Vm.run (make_binary ~arch insns) in
      match r.Vm.outcome with
      | Vm.Halted -> Alcotest.(check (list int)) (Arch.name arch) [ 31 ] r.Vm.output
      | Vm.Crashed m -> Alcotest.failf "%s: %s" (Arch.name arch) m)
    Arch.all

let test_mflr_mtlr_btar () =
  (* ppc64le special registers *)
  let arch = Arch.Ppc64le in
  let i n = n * 4 in
  (* 0: mov r0, 42; 1: lea-like via mtlr; ... *)
  let insns =
    [
      Insn.Mov (r0, Imm 42);
      (* target = insn 6 *)
      Insn.Movhi (r1, (text_base + i 6) asr 16);
      Insn.Orlo (r1, (text_base + i 6) land 0xffff);
      Insn.Mttar r1;
      Insn.Btar;
      Insn.Out r0 (* skipped *);
      Insn.Out r0;
      Insn.Halt;
    ]
  in
  let r = Vm.run (make_binary ~arch insns) in
  match r.Vm.outcome with
  | Vm.Halted -> Alcotest.(check (list int)) "btar" [ 42 ] r.Vm.output
  | Vm.Crashed m -> Alcotest.failf "crashed: %s" m

let test_profile_counts () =
  let arch = Arch.X86_64 in
  let tbl = Hashtbl.create 4 in
  Hashtbl.replace tbl text_base 0;
  let config = { (Vm.default_config ()) with Vm.profile = Some tbl } in
  let r = run ~config [ Mov (r0, Imm 1); Out r0; Halt ] in
  Alcotest.(check bool) "ran" true (r.Vm.outcome = Vm.Halted);
  Alcotest.(check int) "entry fetched once" 1 (Hashtbl.find tbl text_base);
  ignore arch

(* ------------------------------------------------------------------ *)
(* Icache                                                              *)
(* ------------------------------------------------------------------ *)

let test_icache_basic () =
  let c = Icache.create { Icache.line_bytes = 64; lines = 4; miss_cost = 10 } in
  Alcotest.(check bool) "first access misses" true (Icache.access c 0);
  Alcotest.(check bool) "same line hits" false (Icache.access c 63);
  Alcotest.(check bool) "next line misses" true (Icache.access c 64);
  (* conflict: 4 lines direct-mapped; line 0 and line 4 collide *)
  Alcotest.(check bool) "conflict evicts" true (Icache.access c (4 * 64));
  Alcotest.(check bool) "original line evicted" true (Icache.access c 0);
  Alcotest.(check int) "misses counted" 4 (Icache.misses c);
  Icache.reset c;
  Alcotest.(check int) "reset" 0 (Icache.misses c)

let test_icache_pow2 () =
  match Icache.create { Icache.line_bytes = 48; lines = 4; miss_cost = 1 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-power-of-two must be rejected"

(* ------------------------------------------------------------------ *)
(* Ra_map                                                              *)
(* ------------------------------------------------------------------ *)

let test_ra_map_exact_and_floor () =
  let m = Ra_map.of_pairs [ (1000, 100); (2000, 200); (3000, 300) ] in
  Alcotest.(check int) "exact" 200 (Ra_map.translate m 2000);
  Alcotest.(check int) "floor to block start" 200 (Ra_map.translate m 2500);
  Alcotest.(check int) "below all passes through" 50 (Ra_map.translate m 50);
  Alcotest.(check int) "far above passes through" 5_000_000
    (Ra_map.translate m 5_000_000);
  let e = Ra_map.of_pairs ~exact_only:true [ (1000, 100) ] in
  Alcotest.(check int) "exact-only hit" 100 (Ra_map.translate e 1000);
  Alcotest.(check int) "exact-only miss passes through" 1001
    (Ra_map.translate e 1001)

let test_ra_map_encode_roundtrip () =
  let pairs = [ (0x404000, 0x400010); (0x404100, 0x400020); (0x405000, 0x400400) ] in
  let m = Ra_map.of_pairs pairs in
  let m' = Ra_map.decode (Ra_map.encode m) in
  Alcotest.(check (list (pair int int))) "roundtrip" (Ra_map.pairs m) (Ra_map.pairs m');
  let empty = Ra_map.of_pairs [] in
  Alcotest.(check int) "empty encodes to nothing" 0
    (Bytes.length (Ra_map.encode empty))

let ra_map_roundtrip_prop =
  QCheck2.Test.make ~count:200 ~name:"ra_map encode/decode roundtrip"
    QCheck2.Gen.(
      small_list (pair (int_range 0x400000 0x500000) (int_range 0x100000 0x200000)))
    (fun pairs ->
      (* de-duplicate keys: the map is a function *)
      let seen = Hashtbl.create 8 in
      let pairs =
        List.filter
          (fun (k, _) ->
            if Hashtbl.mem seen k then false
            else (
              Hashtbl.add seen k ();
              true))
          pairs
      in
      let m = Ra_map.of_pairs pairs in
      Ra_map.pairs (Ra_map.decode (Ra_map.encode m)) = Ra_map.pairs m)

let ra_map_translate_prop =
  QCheck2.Test.make ~count:200 ~name:"ra_map translate is exact on keys"
    QCheck2.Gen.(small_list (pair (int_range 0 100000) (int_range 0 100000)))
    (fun pairs ->
      let seen = Hashtbl.create 8 in
      let pairs =
        List.filter
          (fun (k, _) ->
            if Hashtbl.mem seen k then false
            else (
              Hashtbl.add seen k ();
              true))
          pairs
      in
      let m = Ra_map.of_pairs pairs in
      List.for_all (fun (k, v) -> Ra_map.translate m k = v) pairs)

(* ------------------------------------------------------------------ *)
(* Unwinding and frames                                                *)
(* ------------------------------------------------------------------ *)

let test_unwind_unhandled () =
  (* A throw with no FDE at all crashes with a clear message. *)
  let r = run [ Mov (r0, Imm 7); Throw ] in
  match r.Vm.outcome with
  | Vm.Crashed m -> Alcotest.(check bool) "message" true (String.length m > 4)
  | Vm.Halted -> Alcotest.fail "expected crash"

let test_unwind_same_frame_handler () =
  let arch = Arch.X86_64 in
  let mov_len = Encode.length arch (Insn.Mov (r0, Imm 7)) in
  let throw_len = Encode.length arch Insn.Throw in
  let handler = text_base + mov_len + throw_len in
  let eh =
    Ehframe.of_fdes
      [
        {
          Ehframe.func_start = text_base;
          func_end = text_base + 64;
          frame_size = 8;
          ra_loc = Ehframe.Ra_on_stack 0;
          landing_pads = [ (text_base, handler, handler) ];
        };
      ]
  in
  let bin =
    make_binary ~eh_frame:eh
      [ Mov (r0, Imm 7); Throw; (* handler: *) Add (r0, Imm 1); Out r0; Halt ]
  in
  let r = Vm.run bin in
  match r.Vm.outcome with
  | Vm.Halted ->
      Alcotest.(check (list int)) "handler got exception value" [ 8 ] r.Vm.output;
      Alcotest.(check bool) "unwind step counted" true (r.Vm.unwind_steps >= 1)
  | Vm.Crashed m -> Alcotest.failf "crashed: %s" m

let test_frames_walk () =
  (* Use a compiled program for realistic frames. *)
  let bin, _ = Icfg_codegen.Compile.compile Arch.X86_64 Test_codegen.go_prog in
  let seen = ref 0 in
  let probe vm =
    let frames = Vm.frames vm in
    seen := List.length frames
  in
  let routines = ("icfg.go_walk", probe) :: Icfg_runtime.Runtime_lib.standard () in
  (* our probe shadows the real walker? List.assoc takes the first match *)
  let r = Vm.run ~routines bin in
  Alcotest.(check bool) "ran" true (r.Vm.outcome = Vm.Halted);
  (* leaf_work <- mid <- main <- _start *)
  Alcotest.(check bool) (Printf.sprintf "at least 4 frames (got %d)" !seen) true (!seen >= 4)

(* ------------------------------------------------------------------ *)
(* call_function                                                       *)
(* ------------------------------------------------------------------ *)

let test_call_function_reentrant () =
  List.iter
    (fun arch ->
      (* Hijack the go-walk routine of the go program to exercise
         re-entrant execution: the routine calls the binary's own [mid]
         function while the outer run is suspended. The guard prevents
         recursion (mid's callee performs a traceback itself). *)
      let bin, _ = Icfg_codegen.Compile.compile arch Test_codegen.go_prog in
      let got = ref 0 in
      let busy = ref false in
      let probe vm =
        if not !busy then (
          busy := true;
          (match Vm.find_symbol vm "mid" with
          | Some addr -> got := Vm.call_function vm ~addr ~args:[ 5 ]
          | None -> Vm.abort vm "no mid");
          busy := false)
      in
      let r = Vm.run ~routines:[ ("icfg.go_walk", probe) ] bin in
      Alcotest.(check bool) (Arch.name arch ^ " ran") true (r.Vm.outcome = Vm.Halted);
      (* mid(5) = leaf_work(5) = 5 + 1 *)
      Alcotest.(check int) (Arch.name arch ^ " reentrant result") 6 !got)
    Arch.all

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ( "runtime:vm",
      [
        Alcotest.test_case "alu" `Quick test_alu;
        Alcotest.test_case "memory" `Quick test_memory;
        Alcotest.test_case "control flow" `Quick test_control_flow;
        Alcotest.test_case "write protection" `Quick test_write_protection;
        Alcotest.test_case "illegal/unmapped" `Quick test_illegal_and_unmapped;
        Alcotest.test_case "trap dispatch" `Quick test_trap_dispatch;
        Alcotest.test_case "callrt unbound" `Quick test_callrt_unbound;
        Alcotest.test_case "callrt routine" `Quick test_callrt_routine;
        Alcotest.test_case "timeout" `Quick test_timeout;
        Alcotest.test_case "call per arch" `Quick test_call_semantics_per_arch;
        Alcotest.test_case "mttar/btar" `Quick test_mflr_mtlr_btar;
        Alcotest.test_case "profile" `Quick test_profile_counts;
      ] );
    ( "runtime:icache",
      [
        Alcotest.test_case "basic" `Quick test_icache_basic;
        Alcotest.test_case "power of two" `Quick test_icache_pow2;
      ] );
    ( "runtime:ra-map",
      [
        Alcotest.test_case "exact and floor" `Quick test_ra_map_exact_and_floor;
        Alcotest.test_case "encode roundtrip" `Quick test_ra_map_encode_roundtrip;
        qt ra_map_roundtrip_prop;
        qt ra_map_translate_prop;
      ] );
    ( "runtime:unwind",
      [
        Alcotest.test_case "unhandled" `Quick test_unwind_unhandled;
        Alcotest.test_case "same-frame handler" `Quick
          test_unwind_same_frame_handler;
        Alcotest.test_case "frames walk" `Quick test_frames_walk;
        Alcotest.test_case "reentrant call" `Quick test_call_function_reentrant;
      ] );
  ]
