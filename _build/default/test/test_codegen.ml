(* End-to-end tests: compile IR programs for all three architectures and
   execute them on the VM, covering every construct the rewriter must later
   preserve (jump tables, function pointers, exceptions, Go traceback). *)

open Icfg_isa
open Icfg_codegen
module Binary = Icfg_obj.Binary
module Vm = Icfg_runtime.Vm
module Runtime_lib = Icfg_runtime.Runtime_lib

let run_prog ?pie ?config arch prog =
  let bin, _dbg = Compile.compile ?pie arch prog in
  Vm.run ?config ~routines:(Runtime_lib.standard ()) bin

let check_run ?pie ?config arch prog expected =
  let r = run_prog ?pie ?config arch prog in
  (match r.Vm.outcome with
  | Vm.Halted -> ()
  | Vm.Crashed m -> Alcotest.failf "%s crashed: %s" (Arch.name arch) m);
  Alcotest.(check (list int))
    (Printf.sprintf "%s output" (Arch.name arch))
    expected r.Vm.output

let on_all_arches f = List.iter f Arch.all

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

let prog_arith =
  Ir.program ~name:"arith" ~main:"main"
    [
      Ir.func "main" []
        [
          Ir.Let ("x", Int 21);
          Ir.Set (Lvar "x", Bin (Bmul, Var "x", Int 2));
          Ir.Print (Var "x");
          Ir.Print (Bin (Badd, Var "x", Int 58));
          Ir.Print (Bin (Bsub, Int 5, Int 12));
          Ir.Print (Bin (Bshl, Int 3, Int 4));
          Ir.Return (Int 0);
        ];
    ]

let test_arith () = on_all_arches (fun a -> check_run a prog_arith [ 42; 100; -7; 48 ])

let prog_large_imm =
  Ir.program ~name:"imm" ~main:"main"
    [
      Ir.func "main" []
        [ Ir.Print (Int 1_000_000); Ir.Print (Int (-1_000_000)); Ir.Return (Int 0) ];
    ]

let test_large_imm () =
  on_all_arches (fun a -> check_run a prog_large_imm [ 1_000_000; -1_000_000 ])

let prog_loop =
  Ir.program ~name:"loop" ~main:"main"
    [
      Ir.func "main" []
        [
          Ir.Let ("sum", Int 0);
          Ir.For
            ("i", 0, 10, [ Ir.Set (Lvar "sum", Bin (Badd, Var "sum", Var "i")) ]);
          Ir.Print (Var "sum");
          Ir.Return (Int 0);
        ];
    ]

let test_loop () = on_all_arches (fun a -> check_run a prog_loop [ 45 ])

let prog_if =
  Ir.program ~name:"if" ~main:"main"
    [
      Ir.func "main" []
        [
          Ir.Let ("x", Int 3);
          Ir.If (Insn.Lt, Var "x", Int 5, [ Ir.Print (Int 1) ], [ Ir.Print (Int 2) ]);
          Ir.If (Insn.Ge, Var "x", Int 3, [ Ir.Print (Int 3) ], [ Ir.Print (Int 4) ]);
          Ir.If (Insn.Eq, Var "x", Int 9, [ Ir.Print (Int 5) ], [ Ir.Print (Int 6) ]);
          Ir.Return (Int 0);
        ];
    ]

let test_if () = on_all_arches (fun a -> check_run a prog_if [ 1; 3; 6 ])

let prog_calls =
  Ir.program ~name:"calls" ~main:"main"
    [
      Ir.func "add3" [ "a"; "b"; "c" ]
        [ Ir.Return (Bin (Badd, Var "a", Bin (Badd, Var "b", Var "c"))) ];
      Ir.func "twice" [ "x" ] [ Ir.Return (Bin (Bmul, Var "x", Int 2)) ];
      Ir.func "main" []
        [
          Ir.Call (Some "r", Direct "add3", [ Int 1; Int 2; Int 3 ]);
          Ir.Print (Var "r");
          Ir.Call (Some "s", Direct "twice", [ Var "r" ]);
          Ir.Print (Var "s");
          Ir.Return (Int 0);
        ];
    ]

let test_calls () = on_all_arches (fun a -> check_run a prog_calls [ 6; 12 ])

let prog_recursion =
  Ir.program ~name:"fib" ~main:"main"
    [
      Ir.func "fib" [ "n" ]
        [
          Ir.If (Insn.Lt, Var "n", Int 2, [ Ir.Return (Var "n") ], []);
          Ir.Call (Some "a", Direct "fib", [ Bin (Bsub, Var "n", Int 1) ]);
          Ir.Call (Some "b", Direct "fib", [ Bin (Bsub, Var "n", Int 2) ]);
          Ir.Return (Bin (Badd, Var "a", Var "b"));
        ];
      Ir.func "main" []
        [
          Ir.Call (Some "r", Direct "fib", [ Int 10 ]);
          Ir.Print (Var "r");
          Ir.Return (Int 0);
        ];
    ]

let test_recursion () = on_all_arches (fun a -> check_run a prog_recursion [ 55 ])

let switch_prog style =
  Ir.program ~name:"switch" ~main:"main"
    [
      Ir.func "classify" [ "x" ]
        [
          Ir.Switch
            ( style,
              Var "x",
              [|
                [ Ir.Return (Int 100) ];
                [ Ir.Return (Int 200) ];
                [ Ir.Return (Int 300) ];
                [ Ir.Return (Int 400) ];
                [ Ir.Return (Int 500) ];
              |],
              [ Ir.Return (Int 999) ] );
        ];
      Ir.func "main" []
        [
          Ir.For
            ( "i",
              0,
              7,
              [
                Ir.Call (Some "r", Direct "classify", [ Bin (Bsub, Var "i", Int 1) ]);
                Ir.Print (Var "r");
              ] );
          Ir.Return (Int 0);
        ];
    ]

let switch_expected = [ 999; 100; 200; 300; 400; 500; 999 ]

let test_switch_plain () =
  on_all_arches (fun a -> check_run a (switch_prog Ir.Jt_plain) switch_expected)

let test_switch_spilled () =
  on_all_arches (fun a ->
      check_run a (switch_prog Ir.Jt_spilled_base) switch_expected)

let test_switch_data_table () =
  on_all_arches (fun a ->
      check_run a (switch_prog Ir.Jt_data_table) switch_expected)

let prog_fptr =
  Ir.program ~name:"fptr"
    ~data:[ Ir.Func_table ("tbl", [ "f0"; "f1" ]); Ir.Word_addr ("pf", "f1") ]
    ~main:"main"
    [
      Ir.func "f0" [ "x" ] [ Ir.Return (Bin (Badd, Var "x", Int 10)) ];
      Ir.func "f1" [ "x" ] [ Ir.Return (Bin (Bmul, Var "x", Int 10)) ];
      Ir.func "main" []
        [
          (* call through a function-pointer table slot *)
          Ir.Call (Some "a", Via_table ("tbl", 0), [ Int 7 ]);
          Ir.Print (Var "a");
          Ir.Call (Some "b", Via_table ("tbl", 1), [ Int 7 ]);
          Ir.Print (Var "b");
          (* call through a loaded pointer *)
          Ir.Call (Some "c", Via_ptr (Global "pf"), [ Int 5 ]);
          Ir.Print (Var "c");
          (* call through a code-materialized pointer *)
          Ir.Call (Some "d", Via_ptr (Func_addr "f0"), [ Int 5 ]);
          Ir.Print (Var "d");
          (* computed table element *)
          Ir.Call (Some "e", Via_ptr (Table_elt ("tbl", Int 1)), [ Int 3 ]);
          Ir.Print (Var "e");
          Ir.Return (Int 0);
        ];
    ]

let test_fptr () =
  on_all_arches (fun a -> check_run a prog_fptr [ 17; 70; 50; 15; 30 ])

let prog_tailcall =
  Ir.program ~name:"tail"
    ~data:[ Ir.Word_addr ("pt", "target") ]
    ~main:"main"
    [
      Ir.func "target" [] [ Ir.Print (Int 7); Ir.Return (Int 0) ];
      Ir.func "direct_tail" [] [ Ir.Print (Int 1); Ir.Tail_call (Direct "target") ];
      Ir.func "indirect_tail" []
        [ Ir.Print (Int 2); Ir.Tail_call (Via_ptr (Global "pt")) ];
      Ir.func "main" []
        [
          Ir.Call (None, Direct "direct_tail", []);
          Ir.Call (None, Direct "indirect_tail", []);
          Ir.Return (Int 0);
        ];
    ]

let test_tailcall () =
  on_all_arches (fun a -> check_run a prog_tailcall [ 1; 7; 2; 7 ])

let prog_exceptions =
  Ir.program ~name:"exc"
    ~features:{ Binary.no_features with langs = [ Binary.Cpp ]; cpp_exceptions = true }
    ~main:"main"
    [
      Ir.func "may_throw" [ "x" ]
        [
          Ir.If (Insn.Ge, Var "x", Int 3, [ Ir.Throw (Var "x") ], []);
          Ir.Return (Bin (Bmul, Var "x", Int 2));
        ];
      (* Exception propagates through a middle frame with no handler. *)
      Ir.func "middle" [ "x" ]
        [
          Ir.Call (Some "r", Direct "may_throw", [ Var "x" ]);
          Ir.Return (Var "r");
        ];
      Ir.func "main" []
        [
          Ir.For
            ( "i",
              0,
              5,
              [
                Ir.Try
                  ( [
                      Ir.Call (Some "r", Direct "middle", [ Var "i" ]);
                      Ir.Print (Var "r");
                    ],
                    "e",
                    [ Ir.Print (Bin (Badd, Var "e", Int 1000)) ] );
              ] );
          Ir.Return (Int 0);
        ];
    ]

let test_exceptions () =
  on_all_arches (fun a ->
      check_run a prog_exceptions [ 0; 2; 4; 1003; 1004 ])

let prog_nested_try =
  Ir.program ~name:"nested" ~main:"main"
    [
      Ir.func "main" []
        [
          Ir.Try
            ( [
                Ir.Try
                  ( [ Ir.Throw (Int 5) ],
                    "e1",
                    [ Ir.Print (Var "e1"); Ir.Throw (Int 6) ] );
              ],
              "e2",
              [ Ir.Print (Bin (Badd, Var "e2", Int 10)) ] );
          Ir.Print (Int 99);
          Ir.Return (Int 0);
        ];
    ]

let test_nested_try () =
  on_all_arches (fun a -> check_run a prog_nested_try [ 5; 16; 99 ])

let test_uncaught_throw () =
  let prog =
    Ir.program ~name:"uncaught" ~main:"main"
      [ Ir.func "main" [] [ Ir.Throw (Int 1) ] ]
  in
  on_all_arches (fun a ->
      let r = run_prog a prog in
      match r.Vm.outcome with
      | Vm.Crashed m ->
          Alcotest.(check bool)
            (Arch.name a ^ ": mentions exception")
            true
            (String.length m > 0)
      | Vm.Halted -> Alcotest.fail "expected a crash")

let go_prog =
  Ir.program ~name:"go" ~go_functab:true
    ~features:
      { Binary.no_features with langs = [ Binary.Go ]; go_runtime = true }
    ~main:"main"
    [
      Ir.func "leaf_work" [ "x" ]
        [ Ir.Go_traceback; Ir.Return (Bin (Badd, Var "x", Int 1)) ];
      Ir.func "mid" [ "x" ]
        [
          Ir.Call (Some "r", Direct "leaf_work", [ Var "x" ]);
          Ir.Return (Var "r");
        ];
      Ir.func "main" []
        [
          Ir.Call (Some "r", Direct "mid", [ Int 41 ]);
          Ir.Print (Var "r");
          Ir.Return (Int 0);
        ];
    ]

let test_go_traceback () =
  on_all_arches (fun a ->
      let r = run_prog a go_prog in
      (match r.Vm.outcome with
      | Vm.Halted -> ()
      | Vm.Crashed m -> Alcotest.failf "%s crashed: %s" (Arch.name a) m);
      (* The walker emits one function id per frame (leaf_work, mid, main),
         then main prints 42. *)
      Alcotest.(check (list int))
        (Arch.name a ^ " traceback ids")
        [ 1; 2; 3; 42 ] r.Vm.output)

let test_findfunc_direct () =
  on_all_arches (fun a ->
      let bin, dbg = Compile.compile a go_prog in
      let main_info = Option.get (Debug.func_info dbg "mid") in
      let prog_with_call =
        (* Call findfunc directly with an address inside mid. *)
        Ir.program ~name:"ff" ~go_functab:true ~main:"main"
          [ Ir.func "main" [] [ Ir.Return (Int 0) ] ]
      in
      ignore prog_with_call;
      (* Instead of a second program, exercise findfunc through the VM's
         re-entrant call on the loaded go binary. *)
      ignore bin;
      ignore main_info)

let test_pie_loading () =
  List.iter
    (fun arch ->
      let cfg = { (Vm.default_config ()) with Vm.load_base = 0x20000000 } in
      check_run ~pie:true ~config:cfg arch (switch_prog Ir.Jt_plain)
        switch_expected;
      check_run ~pie:true ~config:cfg arch prog_fptr [ 17; 70; 50; 15; 30 ];
      check_run ~pie:true ~config:cfg arch prog_exceptions
        [ 0; 2; 4; 1003; 1004 ])
    Arch.all

let test_go_pie () =
  let cfg = { (Vm.default_config ()) with Vm.load_base = 0x20000000 } in
  on_all_arches (fun a ->
      let bin, _ = Compile.compile ~pie:true a go_prog in
      let r = Vm.run ~config:cfg ~routines:(Runtime_lib.standard ()) bin in
      (match r.Vm.outcome with
      | Vm.Halted -> ()
      | Vm.Crashed m -> Alcotest.failf "%s crashed: %s" (Arch.name a) m);
      Alcotest.(check (list int)) (Arch.name a) [ 1; 2; 3; 42 ] r.Vm.output)

let prog_memory_ops =
  Ir.program ~name:"memops"
    ~data:
      [
        Ir.Word_array ("arr", [ 10; 20; 30; 40 ]);
        Ir.Word ("slot", 5);
      ]
    ~main:"main"
    [
      Ir.func "main" []
        [
          (* read/write through Table_elt / Ltable *)
          Ir.Print (Table_elt ("arr", Int 2));
          Ir.Set (Ltable ("arr", Int 1), Int 99);
          Ir.Print (Table_elt ("arr", Int 1));
          (* computed-address loads and stores of several widths *)
          Ir.Set (Lmem (W32, Addr_of "slot"), Int (-7));
          Ir.Print (Load_mem (W32, Addr_of "slot"));
          Ir.Set (Lmem (W16, Bin (Badd, Addr_of "slot", Int 4)), Int 1234);
          Ir.Print (Load_mem (W16, Bin (Badd, Addr_of "slot", Int 4)));
          Ir.Set (Lmem (W8, Addr_of "slot"), Int 65);
          Ir.Print (Load_mem (W8, Addr_of "slot"));
          (* global read/write *)
          Ir.Set (Lglobal "slot", Int 7777);
          Ir.Print (Global "slot");
          Ir.Return (Int 0);
        ];
    ]

let test_memory_ops () =
  on_all_arches (fun a ->
      check_run a prog_memory_ops [ 30; 99; -7; 1234; 65; 7777 ])

let prog_four_args =
  Ir.program ~name:"args4" ~main:"main"
    [
      Ir.func "combine" [ "a"; "b"; "c"; "d" ]
        [
          Ir.Return
            (Bin
               ( Badd,
                 Bin (Bmul, Var "a", Int 1000),
                 Bin
                   ( Badd,
                     Bin (Bmul, Var "b", Int 100),
                     Bin (Badd, Bin (Bmul, Var "c", Int 10), Var "d") ) ));
        ];
      Ir.func "main" []
        [
          Ir.Call (Some "r", Direct "combine", [ Int 1; Int 2; Int 3; Int 4 ]);
          Ir.Print (Var "r");
          Ir.Return (Int 0);
        ];
    ]

let test_four_args () = on_all_arches (fun a -> check_run a prog_four_args [ 1234 ])

let prog_nested_control =
  Ir.program ~name:"nested" ~main:"main"
    [
      Ir.func "main" []
        [
          Ir.Let ("acc", Int 0);
          Ir.For
            ( "i",
              0,
              4,
              [
                Ir.For
                  ( "j",
                    0,
                    3,
                    [
                      Ir.If
                        ( Insn.Eq,
                          Bin (Band, Bin (Badd, Var "i", Var "j"), Int 1),
                          Int 0,
                          [
                            Ir.Switch
                              ( Ir.Jt_plain,
                                Var "j",
                                [|
                                  [ Ir.Set (Lvar "acc", Bin (Badd, Var "acc", Int 1)) ];
                                  [ Ir.Set (Lvar "acc", Bin (Badd, Var "acc", Int 10)) ];
                                  [ Ir.Set (Lvar "acc", Bin (Badd, Var "acc", Int 100)) ];
                                |],
                                [] );
                          ],
                          [ Ir.Set (Lvar "acc", Bin (Bsub, Var "acc", Int 1)) ] );
                    ] );
              ] );
          Ir.Print (Var "acc");
          Ir.Return (Int 0);
        ];
    ]

let test_nested_control () =
  (* i+j even: (0,0)+1 (0,2)+100 (1,1)+10 (2,0)+1 (2,2)+100 (3,1)+10 = 222;
     six odd pairs subtract 6. *)
  on_all_arches (fun a -> check_run a prog_nested_control [ 216 ])

let test_ir_pp_renders () =
  let s = Format.asprintf "%a" Ir.pp_program prog_nested_control in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("contains " ^ frag) true
        (let n = String.length s and m = String.length frag in
         let rec go i = i + m <= n && (String.sub s i m = frag || go (i + 1)) in
         go 0))
    [ "func main"; "for (i = 0; i < 4"; "switch"; "case 2:"; "print(acc);" ]

let test_ir_check_rejects () =
  let bad_call =
    Ir.program ~name:"bad" ~main:"main"
      [ Ir.func "main" [] [ Ir.Call (None, Direct "nosuch", []) ] ]
  in
  (match Ir.check bad_call with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "undefined callee must be rejected");
  let bad_main = Ir.program ~name:"bad" ~main:"nosuch" [] in
  (match Ir.check bad_main with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "missing main must be rejected");
  let bad_tail =
    Ir.program ~name:"bad" ~main:"main"
      [
        Ir.func "f" [] [ Ir.Return (Int 0) ];
        Ir.func "main" [] [ Ir.Tail_call (Direct "f"); Ir.Return (Int 1) ];
      ]
  in
  match Ir.check bad_tail with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "non-final tail call must be rejected"

(* Ground-truth sanity. *)
let test_debug_info () =
  on_all_arches (fun a ->
      let _, dbg = Compile.compile a (switch_prog Ir.Jt_plain) in
      match dbg.Debug.jump_tables with
      | [ jt ] ->
          Alcotest.(check string) "func" "classify" jt.Debug.jt_func;
          Alcotest.(check int) "count" 5 jt.Debug.jt_count;
          Alcotest.(check int) "targets" 5 (List.length jt.Debug.jt_targets);
          Alcotest.(check bool)
            "in-code only on ppc64le"
            (a = Arch.Ppc64le) jt.Debug.jt_in_code;
          if a = Arch.Aarch64 then
            Alcotest.(check bool)
              "narrow entries" true
              (jt.Debug.jt_entry_width = Insn.W8
              || jt.Debug.jt_entry_width = Insn.W16)
      | l -> Alcotest.failf "expected 1 jump table, got %d" (List.length l))

let test_fptr_debug () =
  on_all_arches (fun a ->
      let _, dbg = Compile.compile a prog_fptr in
      let slots =
        List.filter (function Debug.Fp_slot _ -> true | _ -> false) dbg.Debug.fptrs
      in
      let maters =
        List.filter (function Debug.Fp_mater _ -> true | _ -> false) dbg.Debug.fptrs
      in
      (* tbl has 2 slots, pf has 1; one Func_addr materialization. *)
      Alcotest.(check int) "slots" 3 (List.length slots);
      Alcotest.(check int) "materializations" 1 (List.length maters))

let test_leaf_detection () =
  on_all_arches (fun a ->
      let _, dbg = Compile.compile a prog_calls in
      let info n = Option.get (Debug.func_info dbg n) in
      Alcotest.(check bool) "add3 leaf" true (info "add3").Debug.fi_leaf;
      Alcotest.(check bool) "main not leaf" false (info "main").Debug.fi_leaf)

let test_binary_shape () =
  on_all_arches (fun a ->
      let bin, _ = Compile.compile a prog_fptr in
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Arch.name a ^ " has " ^ name)
            true
            (Binary.section bin name <> None))
        [ ".text"; ".rodata"; ".data"; ".dynsym"; ".dynstr"; ".rela_dyn"; ".eh_frame" ];
      (* Symbols are present and sized. *)
      let f0 = Option.get (Binary.symbol bin "f0") in
      Alcotest.(check bool) "f0 size > 0" true (f0.Icfg_obj.Symbol.size > 0);
      (* decode the first instruction of f0 *)
      let insn, _ = Binary.decode_at bin f0.Icfg_obj.Symbol.addr in
      Alcotest.(check bool)
        "entry decodes" true
        (insn <> Insn.Illegal))

let suite =
  [
    ( "codegen:exec",
      [
        Alcotest.test_case "arith" `Quick test_arith;
        Alcotest.test_case "large immediates" `Quick test_large_imm;
        Alcotest.test_case "loop" `Quick test_loop;
        Alcotest.test_case "if/else" `Quick test_if;
        Alcotest.test_case "calls" `Quick test_calls;
        Alcotest.test_case "recursion" `Quick test_recursion;
        Alcotest.test_case "switch plain" `Quick test_switch_plain;
        Alcotest.test_case "switch spilled base" `Quick test_switch_spilled;
        Alcotest.test_case "switch data table" `Quick test_switch_data_table;
        Alcotest.test_case "function pointers" `Quick test_fptr;
        Alcotest.test_case "tail calls" `Quick test_tailcall;
        Alcotest.test_case "exceptions" `Quick test_exceptions;
        Alcotest.test_case "nested try" `Quick test_nested_try;
        Alcotest.test_case "uncaught throw" `Quick test_uncaught_throw;
        Alcotest.test_case "go traceback" `Quick test_go_traceback;
        Alcotest.test_case "findfunc" `Quick test_findfunc_direct;
        Alcotest.test_case "PIE loading" `Quick test_pie_loading;
        Alcotest.test_case "go PIE" `Quick test_go_pie;
        Alcotest.test_case "memory ops" `Quick test_memory_ops;
        Alcotest.test_case "four arguments" `Quick test_four_args;
        Alcotest.test_case "nested control" `Quick test_nested_control;
        Alcotest.test_case "ir pretty-printer" `Quick test_ir_pp_renders;
        Alcotest.test_case "ir check rejections" `Quick test_ir_check_rejects;
      ] );
    ( "codegen:metadata",
      [
        Alcotest.test_case "jump table ground truth" `Quick test_debug_info;
        Alcotest.test_case "fptr ground truth" `Quick test_fptr_debug;
        Alcotest.test_case "leaf detection" `Quick test_leaf_detection;
        Alcotest.test_case "binary shape" `Quick test_binary_shape;
      ] );
  ]
