(** A direct-mapped instruction cache model.

    The paper attributes the main overhead of patching-based rewriting to the
    "ping-pong" between original code and relocated code polluting the
    instruction cache (section 3). The VM charges a miss penalty per fetched
    line, so rewriting modes that bounce less are measurably faster. *)

type config = {
  line_bytes : int;  (** must be a power of two (default 64) *)
  lines : int;  (** must be a power of two (default 512 = 32 KiB) *)
  miss_cost : int;  (** extra cycles per miss (default 20) *)
}

val default_config : config

type t

val create : config -> t
val access : t -> int -> bool
(** [access t addr] touches the line containing [addr]; returns [true] on a
    miss. *)

val misses : t -> int
val accesses : t -> int
val reset : t -> unit
