type config = { line_bytes : int; lines : int; miss_cost : int }

let default_config = { line_bytes = 64; lines = 512; miss_cost = 20 }

type t = {
  cfg : config;
  tags : int array;  (** -1 = invalid *)
  mutable miss_count : int;
  mutable access_count : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create cfg =
  if not (is_pow2 cfg.line_bytes && is_pow2 cfg.lines) then
    invalid_arg "Icache.create: sizes must be powers of two";
  { cfg; tags = Array.make cfg.lines (-1); miss_count = 0; access_count = 0 }

let access t addr =
  t.access_count <- t.access_count + 1;
  let line = addr / t.cfg.line_bytes in
  let idx = line land (t.cfg.lines - 1) in
  if t.tags.(idx) = line then false
  else (
    t.tags.(idx) <- line;
    t.miss_count <- t.miss_count + 1;
    true)

let misses t = t.miss_count
let accesses t = t.access_count
let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.miss_count <- 0;
  t.access_count <- 0
