(** The runtime library injected next to (original or rewritten) binaries.

    Mirrors the paper's LD_PRELOAD library (section 3): it owns the trap
    map consulted by the VM's signal delivery, the return-address map
    extracted from the rewritten binary's [.ra_map] section, and the
    OCaml-implemented routines bound to the dynamic symbols of
    {!Icfg_obj.Abi}. *)

(** {1 Return-address maps} *)

module Ra_map : sig
  type t
  (** A floor map from relocated ([.instr]) addresses to original ([.text])
      addresses. Exact pairs are recorded for return addresses; block-start
      pairs give any relocated PC a translation to its block's original
      start (sufficient for FDE lookup and Go's findfunc). *)

  val of_pairs : ?exact_only:bool -> (int * int) list -> t
  (** [(relocated, original)] pairs; sorted internally. With [exact_only]
      (the call-emulation throw-site map), non-exact lookups pass through. *)

  val translate : t -> int -> int
  (** Exact or floor lookup; returns the input when it precedes every entry
      or falls outside the mapped region (unknown PCs pass through, as in
      section 6 of the paper). *)

  val size : t -> int
  val pairs : t -> (int * int) list

  val encode : t -> Bytes.t
  (** Serialize as the [.ra_map] section payload (16-byte header plus
      8 bytes per pair). *)

  val decode : Bytes.t -> t
  (** Parse a [.ra_map] section payload (what the runtime library does when
      it attaches to a rewritten binary). *)
end

(** {1 Routines} *)

val go_walk_routine : unit -> string * (Vm.t -> unit)
(** Walks the stack like Go's traceback: for each frame, invokes the
    binary's own [runtime.findfunc] on the frame PC and emits the returned
    function id to the observable output; aborts the run ("go panic") if an
    inner frame cannot be resolved. *)

val count_routine :
  (int, int) Hashtbl.t -> key_of:(int -> int) -> string * (Vm.t -> unit)
(** Counting instrumentation payload: increments the counter keyed by
    [key_of call_site_link_addr]. The rewriter provides [key_of] mapping the
    [CallRt] site back to the instrumented block's original address. *)

val translate_r0_routine : Ra_map.t -> string * (Vm.t -> unit)
(** Overwrites [r0] with its RA translation (the findfunc/pcvalue entry
    instrumentation of section 6.2). *)

val empty_routine : unit -> string * (Vm.t -> unit)

val standard : unit -> (string * (Vm.t -> unit)) list
(** The routines every run needs ([go_walk] and [empty]); counting and
    translation routines are added per-experiment. *)
