lib/runtime/icache.mli:
