lib/runtime/runtime_lib.ml: Array Bytes Hashtbl Icfg_isa Icfg_obj Int32 Int64 List Option Printf Vm
