lib/runtime/vm.mli: Hashtbl Icache Icfg_isa Icfg_obj
