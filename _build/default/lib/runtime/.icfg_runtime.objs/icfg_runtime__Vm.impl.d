lib/runtime/vm.ml: Arch Array Bytes Encode Hashtbl Icache Icfg_isa Icfg_obj Insn Int32 Int64 List Option Printf Reg Sys
