lib/runtime/icache.ml: Array
