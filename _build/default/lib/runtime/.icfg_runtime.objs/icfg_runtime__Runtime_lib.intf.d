lib/runtime/runtime_lib.mli: Bytes Hashtbl Vm
