lib/harness/runner.ml: Hashtbl Icfg_baselines Icfg_core Icfg_obj Icfg_runtime Stats
