lib/harness/experiments.ml: Arch Buffer Format Icfg_analysis Icfg_baselines Icfg_codegen Icfg_core Icfg_isa Icfg_obj Icfg_runtime Icfg_workloads List Printf Runner Stats String Table Trampoline
