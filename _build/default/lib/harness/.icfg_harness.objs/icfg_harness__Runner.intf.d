lib/harness/runner.mli: Icfg_baselines Icfg_core Icfg_obj Icfg_runtime
