lib/harness/stats.mli:
