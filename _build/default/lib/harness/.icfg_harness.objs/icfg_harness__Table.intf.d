lib/harness/table.mli:
