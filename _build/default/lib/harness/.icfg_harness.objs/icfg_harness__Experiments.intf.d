lib/harness/experiments.mli: Icfg_isa
