let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let max_f = function [] -> 0. | l -> List.fold_left max neg_infinity l
let min_f = function [] -> 0. | l -> List.fold_left min infinity l
let pct v = Printf.sprintf "%+.2f%%" v

let ratio_pct ~base ~value =
  100. *. float_of_int (value - base) /. float_of_int (max 1 base)
