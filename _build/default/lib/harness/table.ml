let render ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m r -> max m (try String.length (List.nth r c) with _ -> 0))
      0 all
  in
  let widths = List.init cols width in
  let line r =
    String.concat "  "
      (List.mapi
         (fun i w ->
           let cell = try List.nth r i with _ -> "" in
           cell ^ String.make (max 0 (w - String.length cell)) ' ')
         widths)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line header :: sep :: List.map line rows) ^ "\n"
