(** Aggregation helpers for experiment reports. *)

val mean : float list -> float
val max_f : float list -> float
val min_f : float list -> float
val pct : float -> string
(** Format as a signed percentage with two decimals ("+1.35%"). *)

val ratio_pct : base:int -> value:int -> float
(** [(value - base) / base * 100]. *)
