(** Minimal fixed-width text tables for the experiment reports. *)

val render : header:string list -> string list list -> string
(** Columns are sized to their widest cell; the header is underlined. *)
