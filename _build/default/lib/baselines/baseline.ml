open Icfg_isa
module Binary = Icfg_obj.Binary
module Section = Icfg_obj.Section
module Parse = Icfg_analysis.Parse
module Failure_model = Icfg_analysis.Failure_model
module Cfg = Icfg_analysis.Cfg
module Rewriter = Icfg_core.Rewriter
module Mode = Icfg_core.Mode

type outcome = Rewritten of Rewriter.t | Refused of string

let default_payload = Rewriter.P_empty

(* ------------------------------------------------------------------ *)
(* Dyninst-10.2 / SRBI                                                 *)
(* ------------------------------------------------------------------ *)

let srbi ?(payload = default_payload) bin =
  if
    bin.Binary.features.Binary.cpp_exceptions
    && bin.Binary.arch <> Arch.X86_64
  then
    Refused
      "call emulation for C++ exceptions is only implemented on x86-64 in \
       Dyninst-10.2"
  else
    let parse = Parse.parse ~fm:Failure_model.srbi bin in
    let rw = Rewriter.rewrite ~options:(Rewriter.srbi_like payload) parse in
    if rw.Rewriter.rw_stats.Rewriter.s_trap_trampolines > 10 then
      Refused
        "heavy trap-trampoline use; Dyninst-10.2's runtime-library signal \
         delivery is broken (the 602.gcc failure)"
    else if bin.Binary.arch = Arch.Ppc64le then
      (* Dyninst-10.2 reserves a conservatively-sized trap-mapping area per
         basic block on ppc64le — the Table 3 size blow-up. *)
      let blocks = rw.Rewriter.rw_stats.Rewriter.s_blocks in
      let map_size = 72 * blocks in
      let out = rw.Rewriter.rw_binary in
      let out =
        Binary.add_section out
          (Section.make ~name:".trapmap"
             ~vaddr:((Binary.code_end out + 0xfff) / 0x1000 * 0x1000)
             ~perm:Section.r_only
             (Bytes.make map_size '\000'))
      in
      let stats =
        { rw.Rewriter.rw_stats with Rewriter.s_new_size = Binary.loaded_size out }
      in
      Rewritten { rw with Rewriter.rw_binary = out; rw_stats = stats }
    else Rewritten rw

(* ------------------------------------------------------------------ *)
(* Egalito-style IR lowering                                           *)
(* ------------------------------------------------------------------ *)

let ir_lowering ?(payload = default_payload) bin =
  let feat = bin.Binary.features in
  if not bin.Binary.pie then
    Refused "IR lowering requires PIE with run-time relocation entries"
  else if feat.Binary.cpp_exceptions then
    Refused "C++ exceptions are not supported (known Egalito limitation)"
  else if feat.Binary.go_runtime then
    Refused "Go metadata and builtin stack unwinding are not supported"
  else if feat.Binary.rust_metadata then
    Refused "unsupported Rust metadata (the libxul failure)"
  else if feat.Binary.symbol_versioning then
    Refused "cannot rewrite symbol versioning information (the libcuda failure)"
  else
    let parse = Parse.parse bin in
    if Parse.coverage parse < 1.0 then
      let bad =
        List.find (fun f -> not f.Parse.fa_instrumentable) parse.Parse.funcs
      in
      Refused
        (Printf.sprintf
           "all-or-nothing: cannot lift function %s (%s)"
           bad.Parse.fa_sym.Icfg_obj.Symbol.name
           (Option.value ~default:"?" bad.Parse.fa_fail_reason))
    else
      let options =
        {
          Rewriter.default_options with
          Rewriter.mode = Mode.Func_ptr;
          payload;
          ra_translation = false;
        }
      in
      let rw = Rewriter.rewrite ~options parse in
      (* Regeneration: the original code and retired metadata are dropped
         and the entry point moves into the regenerated code. *)
      let entry =
        match rw.Rewriter.rw_relocated_entry bin.Binary.entry with
        | Some e -> e
        | None -> bin.Binary.entry
      in
      let dropped =
        [ ".text"; ".dynsym.old"; ".dynstr.old"; ".rela_dyn.old"; ".ra_map" ]
      in
      let sections =
        List.filter
          (fun (s : Section.t) -> not (List.mem s.Section.name dropped))
          rw.Rewriter.rw_binary.Binary.sections
      in
      let out = { (Binary.with_sections rw.Rewriter.rw_binary sections) with Binary.entry } in
      let stats =
        { rw.Rewriter.rw_stats with Rewriter.s_new_size = Binary.loaded_size out }
      in
      Rewritten { rw with Rewriter.rw_binary = out; rw_stats = stats }

(* ------------------------------------------------------------------ *)
(* E9Patch-style instruction patching                                  *)
(* ------------------------------------------------------------------ *)

let insn_patching ?(payload = default_payload) bin =
  let parse = Parse.parse bin in
  let options =
    {
      Rewriter.default_options with
      Rewriter.mode = Mode.Dir;
      payload;
      tramp_at_every_block = true;
      rewrite_direct = false;
      bounce_back = true;
      ra_translation = false;
      use_superblocks = false;
      use_scratch_pool = false;
    }
  in
  Rewritten (Rewriter.rewrite ~options parse)

(* ------------------------------------------------------------------ *)
(* Multiverse-style dynamic translation                                *)
(* ------------------------------------------------------------------ *)

let dynamic_translation ?(payload = default_payload) bin =
  let parse = Parse.parse bin in
  let options =
    {
      Rewriter.default_options with
      Rewriter.mode = Mode.Dir;
      payload;
      dyn_translate = true;
      call_emulation = true;
      ra_translation = false;
    }
  in
  Rewritten (Rewriter.rewrite ~options parse)

(* ------------------------------------------------------------------ *)
(* BOLT-like optimizer                                                 *)
(* ------------------------------------------------------------------ *)

let bolt_function_reorder bin =
  if bin.Binary.link_relocs = [] then
    Refused
      "BOLT-ERROR: function reordering only works when relocations are \
       enabled"
  else
    let parse = Parse.parse bin in
    let options =
      { Rewriter.default_options with Rewriter.order = `Reverse_funcs }
    in
    Rewritten (Rewriter.rewrite ~options parse)

let has_mem_indirect_call (parse : Parse.t) =
  List.exists
    (fun fa ->
      List.exists
        (fun (b : Cfg.block) ->
          List.exists
            (fun (_, insn, _) ->
              match insn with Insn.IndCallMem _ -> true | _ -> false)
            b.Cfg.b_insns)
        fa.Parse.fa_cfg.Cfg.blocks)
    parse.Parse.funcs

let bolt_block_reorder bin =
  let parse = Parse.parse bin in
  let options =
    { Rewriter.default_options with Rewriter.order = `Reverse_blocks }
  in
  let rw = Rewriter.rewrite ~options parse in
  if has_mem_indirect_call parse then
    (* Emit a corrupted image: the entry is clobbered, so the binary cannot
       be loaded — the "bad .interp data" failure of section 8.3. *)
    Rewritten
      { rw with Rewriter.rw_binary = { rw.Rewriter.rw_binary with Binary.entry = 2 } }
  else Rewritten rw

(* ------------------------------------------------------------------ *)
(* This paper's system                                                 *)
(* ------------------------------------------------------------------ *)

let ours ?(payload = default_payload) ~mode bin =
  let parse = Parse.parse bin in
  let options = { Rewriter.default_options with Rewriter.mode; payload } in
  Rewritten (Rewriter.rewrite ~options parse)

let ours_partial ?(payload = default_payload) ~mode ~only bin =
  let parse = Parse.parse bin in
  let options =
    { Rewriter.default_options with Rewriter.mode; payload; only = Some only }
  in
  Rewritten (Rewriter.rewrite ~options parse)

let legacy_dyninst ?(payload = default_payload) ~only bin =
  let parse = Parse.parse ~fm:Failure_model.srbi bin in
  let options =
    {
      (Rewriter.srbi_like payload) with
      Rewriter.only = Some only;
      (* Mainstream Dyninst placed the relocated area at a fixed far
         address; for driver-sized binaries that exceeds the ppc64le and
         aarch64 short-branch ranges. *)
      instr_gap = 160 * 1024 * 1024;
    }
  in
  Rewritten (Rewriter.rewrite ~options parse)
