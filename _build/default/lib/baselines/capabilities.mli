(** The qualitative comparison of binary rewriting approaches (Table 1). *)

type rewrites = R_none | R_direct | R_indirect
type reloc_use = Rel_none | Rel_runtime | Rel_linktime | Rel_unspecified
type unmodified_cf = U_na | U_patching | U_dynamic_translation | U_unspecified

type unwinding =
  | W_na
  | W_call_emulation
  | W_update_dwarf
  | W_dynamic_translation
  | W_unspecified

type row = {
  approach : string;
  rewrites : rewrites;
  reloc_use : reloc_use;
  unmodified : unmodified_cf;
  unwinding : unwinding;
}

val table1 : row list
(** BOLT, Egalito, E9Patch, Multiverse, RetroWrite, SRBI, and this work, in
    the paper's order. *)

val rewrites_name : rewrites -> string
val reloc_name : reloc_use -> string
val unmodified_name : unmodified_cf -> string
val unwinding_name : unwinding -> string
