lib/baselines/capabilities.ml:
