lib/baselines/capabilities.mli:
