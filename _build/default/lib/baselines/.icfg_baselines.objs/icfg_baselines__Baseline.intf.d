lib/baselines/baseline.mli: Icfg_core Icfg_obj
