lib/baselines/baseline.ml: Arch Bytes Icfg_analysis Icfg_core Icfg_isa Icfg_obj Insn List Option Printf
