type rewrites = R_none | R_direct | R_indirect
type reloc_use = Rel_none | Rel_runtime | Rel_linktime | Rel_unspecified
type unmodified_cf = U_na | U_patching | U_dynamic_translation | U_unspecified

type unwinding =
  | W_na
  | W_call_emulation
  | W_update_dwarf
  | W_dynamic_translation
  | W_unspecified

type row = {
  approach : string;
  rewrites : rewrites;
  reloc_use : reloc_use;
  unmodified : unmodified_cf;
  unwinding : unwinding;
}

let table1 =
  [
    {
      approach = "BOLT";
      rewrites = R_indirect;
      reloc_use = Rel_linktime;
      unmodified = U_unspecified;
      unwinding = W_update_dwarf;
    };
    {
      approach = "Egalito";
      rewrites = R_indirect;
      reloc_use = Rel_runtime;
      unmodified = U_na;
      unwinding = W_na;
    };
    {
      approach = "E9Patch";
      rewrites = R_none;
      reloc_use = Rel_none;
      unmodified = U_patching;
      unwinding = W_na;
    };
    {
      approach = "Multiverse";
      rewrites = R_direct;
      reloc_use = Rel_none;
      unmodified = U_dynamic_translation;
      unwinding = W_call_emulation;
    };
    {
      approach = "RetroWrite";
      rewrites = R_indirect;
      reloc_use = Rel_runtime;
      unmodified = U_na;
      unwinding = W_na;
    };
    {
      approach = "SRBI";
      rewrites = R_direct;
      reloc_use = Rel_none;
      unmodified = U_patching;
      unwinding = W_call_emulation;
    };
    {
      approach = "Our work";
      rewrites = R_indirect;
      reloc_use = Rel_none;
      unmodified = U_patching;
      unwinding = W_dynamic_translation;
    };
  ]

let rewrites_name = function
  | R_none -> "No"
  | R_direct -> "Direct"
  | R_indirect -> "Indirect"

let reloc_name = function
  | Rel_none -> "None"
  | Rel_runtime -> "Run time"
  | Rel_linktime -> "Link time"
  | Rel_unspecified -> ""

let unmodified_name = function
  | U_na -> "NA"
  | U_patching -> "Patching"
  | U_dynamic_translation -> "Dynamic translation"
  | U_unspecified -> ""

let unwinding_name = function
  | W_na -> "NA"
  | W_call_emulation -> "Call emulation"
  | W_update_dwarf -> "Update DWARF"
  | W_dynamic_translation -> "Dynamic translation"
  | W_unspecified -> ""
