(** The synthetic compiler: lowers {!Ir} programs to {!Icfg_obj.Binary}
    binaries for any of the three architecture flavours.

    The lowering follows the per-architecture conventions the paper's
    analyses are built around:

    - {b Calling convention}: up to four arguments in [r0]..[r3], result in
      [r0]; locals in stack slots; x86-64 pushes the return address, the RISC
      flavours use the link register (saved to the frame in non-leaf
      functions, and left in [lr] in leaf functions).
    - {b Jump tables} (section 5.1): x86-64 uses 4-byte table-relative
      entries in [.rodata]; ppc64le embeds 8-byte absolute entries in
      [.text] directly after the indirect jump; aarch64 uses 1- or 2-byte
      entries in [.rodata], scaled by 4 and added to a code base, with
      jump tables separated by unrelated constant data.
    - {b Function pointers} (section 5.2): data-resident pointers get
      R_RELATIVE relocations under PIE and baked absolute values otherwise;
      code-resident pointers are materialized with [movabs] (x86-64
      position-dependent), RIP-relative [lea] (x86-64 PIE), TOC-relative
      [addis/addi] (ppc64le) or [adrp/add] (aarch64).
    - {b Unwinding}: every function gets an FDE; try/catch ranges become
      landing-pad triples; Go programs get a [.gopclntab] function table and
      real [runtime.findfunc]/[runtime.pcvalue] functions compiled from IR.

    Alongside the binary, the compiler returns ground-truth {!Debug}
    information for validating the analyses. *)

val compile :
  ?pie:bool ->
  ?bulk_data:int ->
  ?link_relocs:bool ->
  Icfg_isa.Arch.t ->
  Ir.program ->
  Icfg_obj.Binary.t * Debug.t
(** [compile arch prog] builds the binary. [bulk_data] adds a large zeroed
    data section (SPEC-style working set), which pushes the rewriter's
    [.instr] section further away and stresses branch ranges on ppc64le.
    [link_relocs] retains link-time relocations (the [-Wl,-q] build BOLT
    requires for function reordering).
    Raises [Invalid_argument] on malformed IR and
    {!Icfg_isa.Encode.Not_encodable} if lowering produced an instruction
    whose field overflows (a generator bug). *)

val text_base : int
(** Link-time base address of [.text] (0x400000). *)

val go_walk_sym : string
(** Name of the runtime-library routine implementing the Go traceback
    walker ("icfg.go_walk"). *)

val data_label : string -> string
(** The assembler label of a global data object. *)
