lib/codegen/debug.mli: Format Icfg_isa Ir
