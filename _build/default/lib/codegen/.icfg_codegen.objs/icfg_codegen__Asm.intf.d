lib/codegen/asm.mli: Bytes Hashtbl Icfg_isa Icfg_obj
