lib/codegen/compile.mli: Debug Icfg_isa Icfg_obj Ir
