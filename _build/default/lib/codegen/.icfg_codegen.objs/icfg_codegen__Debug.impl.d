lib/codegen/debug.ml: Format Icfg_isa Ir List
