lib/codegen/ir.ml: Array Format Hashtbl Icfg_isa Icfg_obj List Option String
