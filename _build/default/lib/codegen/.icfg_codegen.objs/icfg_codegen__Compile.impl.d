lib/codegen/compile.ml: Arch Array Asm Bytes Char Debug Hashtbl Icfg_isa Icfg_obj Insn Ir List Printf Reg String
