lib/codegen/asm.ml: Arch Bytes Encode Hashtbl Icfg_isa Icfg_obj Insn Int32 Int64 List Mater Printf Reg String
