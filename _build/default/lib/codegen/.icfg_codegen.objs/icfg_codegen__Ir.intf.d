lib/codegen/ir.mli: Format Icfg_isa Icfg_obj
