type jump_table = {
  jt_func : string;
  jt_jump_addr : int;
  jt_table_addr : int;
  jt_entry_width : Icfg_isa.Insn.width;
  jt_count : int;
  jt_targets : int list;
  jt_base : int;
  jt_scale : int;
  jt_style : Ir.switch_style;
  jt_in_code : bool;
}

type fptr =
  | Fp_slot of { slot : int; func : string; target : int; adjust : int }
  | Fp_mater of { at : int; len : int; func : string; target : int }

type func_info = {
  fi_name : string;
  fi_start : int;
  fi_end : int;
  fi_leaf : bool;
}

type t = {
  jump_tables : jump_table list;
  fptrs : fptr list;
  funcs : func_info list;
}

let empty = { jump_tables = []; fptrs = []; funcs = [] }
let jump_tables_of t f = List.filter (fun jt -> jt.jt_func = f) t.jump_tables
let func_info t name = List.find_opt (fun f -> f.fi_name = name) t.funcs

let pp ppf t =
  Format.fprintf ppf "%d functions, %d jump tables, %d function pointers@."
    (List.length t.funcs)
    (List.length t.jump_tables)
    (List.length t.fptrs);
  List.iter
    (fun jt ->
      Format.fprintf ppf "  jt in %s: jump@0x%x table@0x%x %d entries x %dB@."
        jt.jt_func jt.jt_jump_addr jt.jt_table_addr jt.jt_count
        (Icfg_isa.Insn.width_bytes jt.jt_entry_width))
    t.jump_tables
