open Icfg_isa
module Binary = Icfg_obj.Binary
module Section = Icfg_obj.Section
module Symbol = Icfg_obj.Symbol
module Ehframe = Icfg_obj.Ehframe

let text_base = 0x400000
let go_walk_sym = "icfg.go_walk"
let data_label g = "g$" ^ g

(* Temporary registers used by expression evaluation, lowest first. *)
let t0 = Reg.r12
let t1 = Reg.r13
let t2 = Reg.r14
let t3 = Reg.r15
let temps = [ t0; t1; t2; t3 ]

type pending_jt = {
  pj_func : string;
  pj_jump : string;  (** label on the indirect jump *)
  pj_table : string;
  pj_base : string option;  (** label whose address is the tar() base *)
  pj_width : Insn.width;
  pj_scale : int;
  pj_cases : string list;
  pj_style : Ir.switch_style;
  pj_in_code : bool;
}

type pending_fp =
  | Pf_mater of { label : string; len : int; func : string }
  | Pf_slot of { label : string; func : string; adjust : int }

type funcmeta = {
  fm_name : string;
  fm_leaf : bool;
  fm_frame : int;  (** bytes allocated by the prologue *)
  fm_pads : (string * string * string) list;  (** (lo, hi, handler) labels *)
}

type ctx = {
  arch : Arch.t;
  pie : bool;
  mutable fresh : int;
  mutable rodata : Asm.item list;  (** reversed *)
  mutable data_items : Asm.item list;  (** reversed *)
  mutable jts : pending_jt list;
  mutable fps : pending_fp list;
  mutable metas : funcmeta list;
  dyn_tbl : (string, int) Hashtbl.t;
  mutable dyn_names : string list;  (** reversed *)
  mutable rodata_tables : int;  (** jump tables emitted so far (aarch64 quirk) *)
}

let fresh ctx prefix =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s$%d" prefix ctx.fresh

let dyn_index ctx name =
  match Hashtbl.find_opt ctx.dyn_tbl name with
  | Some i -> i
  | None ->
      let i = Hashtbl.length ctx.dyn_tbl in
      Hashtbl.add ctx.dyn_tbl name i;
      ctx.dyn_names <- name :: ctx.dyn_names;
      i

let push_rodata ctx items = ctx.rodata <- List.rev_append items ctx.rodata
let push_data ctx items = ctx.data_items <- List.rev_append items ctx.data_items

(* ------------------------------------------------------------------ *)
(* Function environment                                                *)
(* ------------------------------------------------------------------ *)

type fenv = {
  ctx : ctx;
  fname : string;
  slots : (string, int) Hashtbl.t;
  frame : int;
  leaf : bool;
  mutable pads : (string * string * string) list;
}

let slot_off env v =
  match Hashtbl.find_opt env.slots v with
  | Some i -> 8 * i
  | None -> invalid_arg (Printf.sprintf "%s: unbound variable %s" env.fname v)

(* A function is a leaf if nothing in it transfers control out and back:
   calls (direct, indirect, runtime) force an LR save on the RISC
   flavours. Throw does not: the unwinder reads lr via the FDE. *)
let rec stmt_has_call = function
  | Ir.Call _ | Ir.Go_traceback -> true
  | Ir.Tail_call _ -> false
  | Ir.If (_, _, _, a, b) -> List.exists stmt_has_call a || List.exists stmt_has_call b
  | Ir.For (_, _, _, body) -> List.exists stmt_has_call body
  | Ir.Switch (_, _, cases, d) ->
      Array.exists (List.exists stmt_has_call) cases
      || List.exists stmt_has_call d
  | Ir.Try (body, _, h) ->
      List.exists stmt_has_call body || List.exists stmt_has_call h
  | Ir.Let _ | Ir.Set _ | Ir.Return _ | Ir.Print _ | Ir.Throw _ | Ir.Nops _ ->
      false

let rec stmt_needs_ptr_slot = function
  | Ir.Call (_, Ir.Via_ptr _, _) -> true
  | Ir.If (_, _, _, a, b) ->
      List.exists stmt_needs_ptr_slot a || List.exists stmt_needs_ptr_slot b
  | Ir.For (_, _, _, body) -> List.exists stmt_needs_ptr_slot body
  | Ir.Switch (_, _, cases, d) ->
      Array.exists (List.exists stmt_needs_ptr_slot) cases
      || List.exists stmt_needs_ptr_slot d
  | Ir.Try (body, _, h) ->
      List.exists stmt_needs_ptr_slot body || List.exists stmt_needs_ptr_slot h
  | _ -> false

let rec stmt_needs_spill = function
  | Ir.Switch (Ir.Jt_spilled_base, _, _, _) -> true
  | Ir.If (_, _, _, a, b) ->
      List.exists stmt_needs_spill a || List.exists stmt_needs_spill b
  | Ir.For (_, _, _, body) -> List.exists stmt_needs_spill body
  | Ir.Switch (_, _, cases, d) ->
      Array.exists (List.exists stmt_needs_spill) cases
      || List.exists stmt_needs_spill d
  | Ir.Try (body, _, h) ->
      List.exists stmt_needs_spill body || List.exists stmt_needs_spill h
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)
(* ------------------------------------------------------------------ *)

let mater_label ctx reg label : Asm.item list =
  match (ctx.arch, ctx.pie) with
  | Arch.X86_64, false -> [ Asm.Movabs_of (reg, label) ]
  | Arch.X86_64, true -> [ Asm.Lea_of (reg, label) ]
  | Arch.Ppc64le, _ -> [ Asm.Addis_toc (reg, label); Asm.Addlo_toc (reg, label) ]
  | Arch.Aarch64, _ -> [ Asm.Adrp_of (reg, label); Asm.Addlo_page (reg, label) ]

let mater_label_len ctx =
  match (ctx.arch, ctx.pie) with
  | Arch.X86_64, false -> 10
  | Arch.X86_64, true -> 7
  | (Arch.Ppc64le | Arch.Aarch64), _ -> 8

let mater_func env reg f : Asm.item list =
  let l = fresh env.ctx "fpm" in
  env.ctx.fps <-
    Pf_mater { label = l; len = mater_label_len env.ctx; func = f } :: env.ctx.fps;
  Asm.Label l :: mater_label env.ctx reg f

let mov_imm arch reg n : Asm.item list =
  match arch with
  | Arch.X86_64 -> [ Asm.Insn (Insn.Mov (reg, Imm n)) ]
  | Arch.Ppc64le | Arch.Aarch64 ->
      if n >= -32768 && n < 32768 then [ Asm.Insn (Insn.Mov (reg, Imm n)) ]
      else
        [
          Asm.Insn (Insn.Movhi (reg, n asr 16));
          Asm.Insn (Insn.Orlo (reg, n land 0xffff));
        ]

let imm_fits arch n =
  match arch with
  | Arch.X86_64 -> n >= -0x80000000 && n < 0x80000000
  | Arch.Ppc64le | Arch.Aarch64 -> n >= -32768 && n < 32768

let binop_rr (op : Ir.binop) rd rs : Insn.t =
  match op with
  | Badd -> Add (rd, Reg rs)
  | Bsub -> Sub (rd, Reg rs)
  | Bmul -> Mul (rd, Reg rs)
  | Band -> And_ (rd, Reg rs)
  | Bor -> Or_ (rd, Reg rs)
  | Bxor -> Xor (rd, Reg rs)
  | Bshl | Bshr -> invalid_arg "shift by register is not supported"

let binop_ri (op : Ir.binop) rd n : Insn.t =
  match op with
  | Badd -> Add (rd, Imm n)
  | Bsub -> Sub (rd, Imm n)
  | Bmul -> Mul (rd, Imm n)
  | Band -> And_ (rd, Imm n)
  | Bor -> Or_ (rd, Imm n)
  | Bxor -> Xor (rd, Imm n)
  | Bshl -> Shl (rd, n)
  | Bshr -> Shr (rd, n)

let rec eval env (e : Ir.expr) reg pool : Asm.item list =
  let ctx = env.ctx in
  match e with
  | Int n -> mov_imm ctx.arch reg n
  | Var v -> [ Asm.Insn (Insn.Load (W64, reg, BSp, slot_off env v)) ]
  | Global g ->
      mater_label ctx reg (data_label g)
      @ [ Asm.Insn (Insn.Load (W64, reg, BReg reg, 0)) ]
  | Addr_of g -> mater_label ctx reg (data_label g)
  | Func_addr f -> mater_func env reg f
  | Load_mem (w, a) ->
      eval env a reg pool @ [ Asm.Insn (Insn.Load (w, reg, BReg reg, 0)) ]
  | Table_elt (t, idx) -> (
      match pool with
      | tmp :: _rest ->
          eval env idx reg pool
          @ mater_label ctx tmp (data_label t)
          @ [ Asm.Insn (Insn.LoadIdx (W64, reg, tmp, reg, 8)) ]
      | [] -> invalid_arg (env.fname ^ ": expression too deep"))
  | Bin ((Bshl | Bshr) as op, a, Int n) ->
      eval env a reg pool @ [ Asm.Insn (binop_ri op reg n) ]
  | Bin (op, a, Int n)
    when imm_fits ctx.arch n && not (op = Bshl || op = Bshr) ->
      eval env a reg pool @ [ Asm.Insn (binop_ri op reg n) ]
  | Bin (op, a, b) -> (
      match pool with
      | tmp :: rest ->
          eval env a reg pool @ eval env b tmp rest
          @ [ Asm.Insn (binop_rr op reg tmp) ]
      | [] -> invalid_arg (env.fname ^ ": expression too deep"))

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                  *)
(* ------------------------------------------------------------------ *)

(* Frame teardown without the final return/jump. Uses t2 so that an
   indirect tail-call target staged in t0 survives. *)
let epilogue_items env : Asm.item list =
  let restore_lr =
    if env.leaf || not (Arch.has_link_register env.ctx.arch) then []
    else
      [
        Asm.Insn (Insn.Load (W64, t2, BSp, env.frame - 8));
        Asm.Insn (Insn.Mtlr t2);
      ]
  in
  let dealloc = if env.frame = 0 then [] else [ Asm.Insn (Insn.AddSp env.frame) ] in
  restore_lr @ dealloc

let store_var env v reg = [ Asm.Insn (Insn.Store (W64, BSp, slot_off env v, reg)) ]

let arg_temps = [| t0; t1; t2; t3 |]

let lower_args env args =
  (* Evaluate argument i into temps.(i); later arguments get smaller pools,
     so deep expressions must come first (the generators comply). *)
  let items =
    List.concat
      (List.mapi
         (fun i a ->
           let reg = arg_temps.(i) in
           let pool = List.filteri (fun j _ -> j > i) temps in
           eval env a reg pool)
         args)
  in
  let moves =
    List.mapi
      (fun i _ -> Asm.Insn (Insn.Mov (List.nth Reg.arg_regs i, Reg arg_temps.(i))))
      args
  in
  items @ moves

let rec lower_stmts env stmts = List.concat_map (lower_stmt env) stmts

and lower_stmt env (s : Ir.stmt) : Asm.item list =
  let ctx = env.ctx in
  match s with
  | Let (v, e) | Set (Lvar v, e) -> eval env e t0 [ t1; t2; t3 ] @ store_var env v t0
  | Set (Lglobal g, e) ->
      eval env e t0 [ t1; t2 ]
      @ mater_label ctx t3 (data_label g)
      @ [ Asm.Insn (Insn.Store (W64, BReg t3, 0, t0)) ]
  | Set (Ltable (t, idx), e) ->
      eval env e t0 [ t1 ]
      @ eval env idx t1 [ t2 ]
      @ mater_label ctx t3 (data_label t)
      @ [
          Asm.Insn (Insn.Shl (t1, 3));
          Asm.Insn (Insn.Add (t1, Reg t3));
          Asm.Insn (Insn.Store (W64, BReg t1, 0, t0));
        ]
  | Set (Lmem (w, a), e) ->
      eval env e t0 [ t1 ]
      @ eval env a t1 [ t2; t3 ]
      @ [ Asm.Insn (Insn.Store (w, BReg t1, 0, t0)) ]
  | If (c, e1, e2, yes, no) ->
      let l_else = fresh ctx "else" and l_end = fresh ctx "endif" in
      eval env e1 t0 [ t1; t2; t3 ]
      @ eval env e2 t1 [ t2; t3 ]
      @ [
          Asm.Insn (Insn.Cmp (t0, Reg t1));
          Asm.Jcc_to (Insn.negate_cond c, l_else);
        ]
      @ lower_stmts env yes
      @ [ Asm.Jmp_to l_end; Asm.Label l_else ]
      @ lower_stmts env no @ [ Asm.Label l_end ]
  | For (v, lo, hi, body) ->
      let l_head = fresh ctx "for" and l_end = fresh ctx "endfor" in
      if not (imm_fits ctx.arch hi) then
        invalid_arg (env.fname ^ ": loop bound too large");
      mov_imm ctx.arch t0 lo @ store_var env v t0
      @ [
          Asm.Label l_head;
          Asm.Insn (Insn.Load (W64, t0, BSp, slot_off env v));
          Asm.Insn (Insn.Cmp (t0, Imm hi));
          Asm.Jcc_to (Insn.Ge, l_end);
        ]
      @ lower_stmts env body
      @ [
          Asm.Insn (Insn.Load (W64, t0, BSp, slot_off env v));
          Asm.Insn (Insn.Add (t0, Imm 1));
          Asm.Insn (Insn.Store (W64, BSp, slot_off env v, t0));
          Asm.Jmp_to l_head;
          Asm.Label l_end;
        ]
  | Switch (style, scrutinee, cases, default) ->
      lower_switch env style scrutinee cases default
  | Call (res, callee, args) ->
      let n = List.length args in
      let call_items =
        match callee with
        | Direct f ->
            if n > 4 then invalid_arg (env.fname ^ ": too many arguments");
            lower_args env args @ [ Asm.Call_to f ]
        | Via_ptr p ->
            if n > 3 then
              invalid_arg (env.fname ^ ": too many arguments for indirect call");
            (* Stage the pointer in a hidden slot so argument evaluation can
               use every temporary. *)
            eval env p t0 [ t1; t2; t3 ]
            @ store_var env "$ptr" t0 @ lower_args env args
            @ [
                Asm.Insn (Insn.Load (W64, t3, BSp, slot_off env "$ptr"));
                Asm.Insn (Insn.IndCall t3);
              ]
        | Via_table (t, k) ->
            if n > 3 then
              invalid_arg (env.fname ^ ": too many arguments for indirect call");
            lower_args env args
            @ mater_label ctx t3 (data_label t)
            @ [ Asm.Insn (Insn.IndCallMem (BReg t3, 8 * k)) ]
      in
      let save =
        match res with None -> [] | Some v -> store_var env v Reg.ret
      in
      call_items @ save
  | Tail_call (Direct f) -> epilogue_items env @ [ Asm.Jmp_to f ]
  | Tail_call (Via_ptr p) ->
      eval env p t0 [ t1; t2; t3 ]
      @ epilogue_items env
      @ [ Asm.Insn (Insn.IndJmp t0) ]
  | Tail_call (Via_table (t, k)) ->
      mater_label ctx t0 (data_label t)
      @ [ Asm.Insn (Insn.Load (W64, t0, BReg t0, 8 * k)) ]
      @ epilogue_items env
      @ [ Asm.Insn (Insn.IndJmp t0) ]
  | Return e ->
      eval env e Reg.ret [ t0; t1; t2; t3 ]
      @ epilogue_items env @ [ Asm.Insn Insn.Ret ]
  | Print e -> eval env e t0 [ t1; t2; t3 ] @ [ Asm.Insn (Insn.Out t0) ]
  | Throw e -> eval env e Reg.r0 [ t0; t1; t2; t3 ] @ [ Asm.Insn Insn.Throw ]
  | Try (body, v, handler) ->
      let l_lo = fresh ctx "try" in
      let l_hi = fresh ctx "endtry" in
      let l_pad = fresh ctx "catch" in
      let l_end = fresh ctx "endcatch" in
      env.pads <- (l_lo, l_hi, l_pad) :: env.pads;
      (Asm.Label l_lo :: lower_stmts env body)
      @ [ Asm.Label l_hi; Asm.Jmp_to l_end; Asm.Label l_pad ]
      @ store_var env v Reg.r0 @ lower_stmts env handler @ [ Asm.Label l_end ]
  | Go_traceback -> [ Asm.Insn (Insn.CallRt (dyn_index ctx go_walk_sym)) ]
  | Nops n -> List.init n (fun _ -> Asm.Insn Insn.Nop)

and lower_switch env style scrutinee cases default : Asm.item list =
  let ctx = env.ctx in
  let n = Array.length cases in
  if n = 0 then invalid_arg (env.fname ^ ": empty switch");
  let l_default = fresh ctx "swdef" and l_end = fresh ctx "swend" in
  let l_tbl = fresh ctx "jtbl" and l_jmp = fresh ctx "jjmp" in
  let case_labels = Array.init n (fun i -> fresh ctx (Printf.sprintf "case%d" i)) in
  let bounds =
    eval env scrutinee t0 [ t1; t2; t3 ]
    @ [
        Asm.Insn (Insn.Cmp (t0, Imm 0));
        Asm.Jcc_to (Insn.Lt, l_default);
        Asm.Insn (Insn.Cmp (t0, Imm n));
        Asm.Jcc_to (Insn.Ge, l_default);
      ]
  in
  (* Case bodies, shared by every dispatch flavour. *)
  let case_items =
    List.concat
      (List.mapi
         (fun i body ->
           (Asm.Label case_labels.(i) :: lower_stmts env body)
           @ [ Asm.Jmp_to l_end ])
         (Array.to_list cases))
  in
  let tail =
    (Asm.Label l_default :: lower_stmts env default) @ [ Asm.Label l_end ]
  in
  let record ~base ~width ~scale ~in_code =
    ctx.jts <-
      {
        pj_func = env.fname;
        pj_jump = l_jmp;
        pj_table = l_tbl;
        pj_base = base;
        pj_width = width;
        pj_scale = scale;
        pj_cases = Array.to_list case_labels;
        pj_style = style;
        pj_in_code = in_code;
      }
      :: ctx.jts
  in
  (* Optionally spill/reload the freshly-materialized table base through the
     stack: the pattern that defeats analyses without memory tracking. *)
  let spill items =
    match style with
    | Ir.Jt_spilled_base ->
        items
        @ [
            Asm.Insn (Insn.Store (W64, BSp, slot_off env "$jtspill", t1));
            Asm.Insn Insn.Nop;
            Asm.Insn (Insn.Mov (t3, Imm 7));
            Asm.Insn (Insn.Add (t3, Reg t0));
            Asm.Insn (Insn.Load (W64, t1, BSp, slot_off env "$jtspill"));
          ]
    | Ir.Jt_plain | Ir.Jt_data_table -> items
  in
  match style with
  | Ir.Jt_data_table ->
      (* Dispatch through a writable pointer table in .data. *)
      push_data ctx
        (Asm.Align (8, `Zero) :: Asm.Label l_tbl
        :: List.map
             (fun c -> Asm.Data (Insn.W64, Asm.Addr c, `Reloc))
             (Array.to_list case_labels));
      record ~base:None ~width:Insn.W64 ~scale:1 ~in_code:false;
      bounds
      @ mater_label ctx t1 l_tbl
      @ [
          Asm.Insn (Insn.LoadIdx (W64, t2, t1, t0, 8));
          Asm.Label l_jmp;
          Asm.Insn (Insn.IndJmp t2);
        ]
      @ case_items @ tail
  | Ir.Jt_plain | Ir.Jt_spilled_base -> (
      match ctx.arch with
      | Arch.X86_64 ->
          push_rodata ctx
            (Asm.Align (4, `Zero) :: Asm.Label l_tbl
            :: List.map
                 (fun c -> Asm.Data (Insn.W32, Asm.Diff (c, l_tbl, 1), `No_reloc))
                 (Array.to_list case_labels));
          ctx.rodata_tables <- ctx.rodata_tables + 1;
          record ~base:(Some l_tbl) ~width:Insn.W32 ~scale:1 ~in_code:false;
          bounds
          @ spill (mater_label ctx t1 l_tbl)
          @ [
              Asm.Insn (Insn.LoadIdx (W32, t2, t1, t0, 4));
              Asm.Insn (Insn.Add (t2, Reg t1));
              Asm.Label l_jmp;
              Asm.Insn (Insn.IndJmp t2);
            ]
          @ case_items @ tail
      | Arch.Ppc64le ->
          (* Table embedded in .text right after the indirect jump. *)
          record ~base:None ~width:Insn.W64 ~scale:1 ~in_code:true;
          bounds
          @ spill (mater_label ctx t1 l_tbl)
          @ [
              Asm.Insn (Insn.LoadIdx (W64, t2, t1, t0, 8));
              Asm.Label l_jmp;
              Asm.Insn (Insn.IndJmp t2);
              Asm.Label l_tbl;
            ]
          @ List.map
              (fun c -> Asm.Data (Insn.W64, Asm.Addr c, `Reloc))
              (Array.to_list case_labels)
          @ case_items @ tail
      | Arch.Aarch64 ->
          (* Narrow, code-base-relative entries; the code base is the first
             case. Estimate the case-body extent to pick entry width. *)
          let l_base = case_labels.(0) in
          let est =
            List.fold_left
              (fun acc it -> acc + Asm.item_size ctx.arch ~pie:ctx.pie ~at:0 it)
              0 case_items
          in
          let width, scale_bytes =
            if est < 480 then (Insn.W8, 1) else (Insn.W16, 2)
          in
          (* aarch64 quirk: jump tables are separated by unrelated constant
             data (strings, numeric literals). *)
          let filler =
            if ctx.rodata_tables > 0 then
              [ Asm.Raw "aarch64-const-pool\000"; Asm.Align (2, `Zero) ]
            else [ Asm.Align (2, `Zero) ]
          in
          push_rodata ctx
            (filler
            @ (Asm.Label l_tbl
              :: List.map
                   (fun c -> Asm.Data (width, Asm.Diff (c, l_base, 4), `No_reloc))
                   (Array.to_list case_labels)));
          ctx.rodata_tables <- ctx.rodata_tables + 1;
          record ~base:(Some l_base) ~width ~scale:4 ~in_code:false;
          bounds
          @ spill (mater_label ctx t1 l_tbl)
          @ [
              Asm.Insn (Insn.LoadIdx (width, t2, t1, t0, scale_bytes));
              Asm.Insn (Insn.Shl (t2, 2));
              Asm.Lea_of (t3, l_base);
              Asm.Insn (Insn.Add (t2, Reg t3));
              Asm.Label l_jmp;
              Asm.Insn (Insn.IndJmp t2);
            ]
          @ case_items @ tail)

(* ------------------------------------------------------------------ *)
(* Function lowering                                                   *)
(* ------------------------------------------------------------------ *)

let lower_func ctx (f : Ir.func) : Asm.item list =
  let locals = Ir.locals_of_func f in
  let locals =
    locals
    @ (if List.exists stmt_needs_ptr_slot f.body then [ "$ptr" ] else [])
    @ if List.exists stmt_needs_spill f.body then [ "$jtspill" ] else []
  in
  let slots = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.replace slots v i) locals;
  let leaf = not (List.exists stmt_has_call f.body) in
  let has_lr = Arch.has_link_register ctx.arch in
  let frame =
    let vars = 8 * List.length locals in
    if has_lr && not leaf then vars + 8 else vars
  in
  let env = { ctx; fname = f.fname; slots; frame; leaf; pads = [] } in
  let prologue =
    (if frame = 0 then [] else [ Asm.Insn (Insn.AddSp (-frame)) ])
    @ (if has_lr && not leaf then
         [ Asm.Insn (Insn.Mflr t0); Asm.Insn (Insn.Store (W64, BSp, frame - 8, t0)) ]
       else [])
    @ List.concat
        (List.mapi
           (fun i p ->
             [ Asm.Insn (Insn.Store (W64, BSp, slot_off env p, List.nth Reg.arg_regs i)) ])
           f.params)
  in
  let body = lower_stmts env f.body in
  let needs_implicit_return =
    match List.rev f.body with
    | (Ir.Return _ | Ir.Tail_call _ | Ir.Throw _) :: _ -> false
    | _ -> true
  in
  let implicit =
    if needs_implicit_return then lower_stmt env (Ir.Return (Int 0)) else []
  in
  ctx.metas <-
    { fm_name = f.fname; fm_leaf = leaf; fm_frame = frame; fm_pads = env.pads }
    :: ctx.metas;
  [ Asm.Align (16, `Nop); Asm.Label f.fname ]
  @ prologue @ body @ implicit
  @ [ Asm.Label (f.fname ^ "$end") ]

(* ------------------------------------------------------------------ *)
(* Go runtime synthesis                                                *)
(* ------------------------------------------------------------------ *)

let go_runtime_funcs nfuncs : Ir.func list =
  let entry_expr =
    Ir.Bin (Badd, Addr_of "gopclntab", Bin (Badd, Int 8, Bin (Bmul, Var "i", Int 24)))
  in
  let lookup ret_field =
    [
      Ir.For
        ( "i",
          0,
          nfuncs,
          [
            Ir.Let ("base", entry_expr);
            Ir.If
              ( Insn.Ge,
                Var "pc",
                Load_mem (W64, Var "base"),
                [
                  Ir.If
                    ( Insn.Lt,
                      Var "pc",
                      Load_mem (W64, Bin (Badd, Var "base", Int 8)),
                      [ Ir.Return (ret_field (Ir.Var "base")) ],
                      [] );
                ],
                [] );
          ] );
      Ir.Return (Int (-1));
    ]
  in
  [
    Ir.func "runtime.findfunc" [ "pc" ]
      (lookup (fun base -> Ir.Load_mem (W64, Bin (Badd, base, Int 16))));
    Ir.func "runtime.pcvalue" [ "pc" ]
      (lookup (fun base ->
           Ir.Bin (Badd, Bin (Bmul, Load_mem (W64, Bin (Badd, base, Int 16)), Int 3), Int 1)));
  ]

(* ------------------------------------------------------------------ *)
(* Data lowering                                                       *)
(* ------------------------------------------------------------------ *)

let lower_data ctx (d : Ir.data) =
  match d with
  | Word (g, v) ->
      push_data ctx
        [
          Asm.Align (8, `Zero);
          Asm.Label (data_label g);
          Asm.Data (Insn.W64, Asm.Const v, `No_reloc);
        ]
  | Word_addr (g, f) ->
      ctx.fps <- Pf_slot { label = data_label g; func = f; adjust = 0 } :: ctx.fps;
      push_data ctx
        [
          Asm.Align (8, `Zero);
          Asm.Label (data_label g);
          Asm.Data (Insn.W64, Asm.Addr f, `Reloc);
        ]
  | Func_table (t, fs) ->
      let items =
        List.concat
          (List.mapi
             (fun i f ->
               let l = data_label t ^ Printf.sprintf "$%d" i in
               ctx.fps <- Pf_slot { label = l; func = f; adjust = 0 } :: ctx.fps;
               [ Asm.Label l; Asm.Data (Insn.W64, Asm.Addr f, `Reloc) ])
             fs)
      in
      push_data ctx (Asm.Align (8, `Zero) :: Asm.Label (data_label t) :: items)
  | Word_array (g, vs) ->
      push_data ctx
        (Asm.Align (8, `Zero) :: Asm.Label (data_label g)
        :: List.map (fun v -> Asm.Data (Insn.W64, Asm.Const v, `No_reloc)) vs)
  | Cstring (g, s) ->
      push_rodata ctx [ Asm.Label (data_label g); Asm.Raw (s ^ "\000") ]

(* ------------------------------------------------------------------ *)
(* Whole-program compilation                                           *)
(* ------------------------------------------------------------------ *)

let align_up n a = (n + a - 1) / a * a

let compile ?(pie = false) ?(bulk_data = 0) ?(link_relocs = false) arch (prog : Ir.program) =
  let ctx =
    {
      arch;
      pie;
      fresh = 0;
      rodata = [];
      data_items = [];
      jts = [];
      fps = [];
      metas = [];
      dyn_tbl = Hashtbl.create 8;
      dyn_names = [];
      rodata_tables = 0;
    }
  in
  let funcs =
    if prog.go_functab then
      prog.funcs @ go_runtime_funcs (List.length prog.funcs + 2)
    else prog.funcs
  in
  Ir.check { prog with Ir.funcs };
  (* Text stream: _start first, then every function. *)
  let start_items =
    [
      Asm.Label "_start";
      Asm.Call_to prog.main;
      Asm.Insn Insn.Halt;
      Asm.Label "_start$end";
    ]
  in
  let func_items = List.concat_map (lower_func ctx) funcs in
  List.iter (lower_data ctx) prog.data;
  (* Go function table: header word + (start, end, id) per function. *)
  let gopclntab_items =
    if not prog.go_functab then []
    else
      Asm.Align (8, `Zero) :: Asm.Label (data_label "gopclntab")
      :: Asm.Data (Insn.W64, Asm.Const (List.length funcs), `No_reloc)
      :: List.concat
           (List.mapi
              (fun i (f : Ir.func) ->
                [
                  Asm.Data (Insn.W64, Asm.Addr f.fname, `Reloc);
                  Asm.Data (Insn.W64, Asm.Addr (f.fname ^ "$end"), `Reloc);
                  Asm.Data (Insn.W64, Asm.Const (i + 1), `No_reloc);
                ])
              funcs)
  in
  let text_items = start_items @ func_items in
  let rodata_items = List.rev ctx.rodata in
  let data_items = List.rev ctx.data_items in

  (* Layout all streams in one label namespace. *)
  let labels = Hashtbl.create 256 in
  let text_lay = Asm.layout arch ~pie ~labels ~base:text_base text_items in
  let rodata_base = align_up text_lay.l_end 0x1000 in
  let rodata_lay = Asm.layout arch ~pie ~labels ~base:rodata_base rodata_items in
  let go_base = align_up rodata_lay.l_end 0x1000 in
  let go_lay = Asm.layout arch ~pie ~labels ~base:go_base gopclntab_items in
  let bulk_base = align_up go_lay.l_end 0x1000 in
  let bulk_end = bulk_base + align_up bulk_data 0x1000 in
  let data_base = align_up bulk_end 0x1000 in
  let data_lay = Asm.layout arch ~pie ~labels ~base:data_base data_items in
  let toc = if arch = Arch.Ppc64le then data_base + 0x8000 else 0 in

  (* Encode. *)
  let text_bytes, text_relocs = Asm.encode arch ~pie ~toc ~labels text_lay in
  let rodata_bytes, rodata_relocs = Asm.encode arch ~pie ~toc ~labels rodata_lay in
  let go_bytes, go_relocs = Asm.encode arch ~pie ~toc ~labels go_lay in
  let data_bytes, data_relocs = Asm.encode arch ~pie ~toc ~labels data_lay in
  let relocs = text_relocs @ rodata_relocs @ go_relocs @ data_relocs in

  let addr l = Asm.label_exn labels l in

  (* Dynamic-linking sections placed below .text; they become scratch space
     after the rewriter moves them. Contents are opaque filler. *)
  let dyn_names = List.rev ctx.dyn_names in
  let nfuncs = List.length funcs in
  let dynsym_size = 24 * (nfuncs + List.length dyn_names + 2) in
  let dynstr_size =
    List.fold_left (fun a (f : Ir.func) -> a + String.length f.fname + 1) 16 funcs
  in
  let rela_size = (24 * List.length relocs) + 24 in
  let filler n seed =
    Bytes.init n (fun i -> Char.chr ((i * 131 + seed) land 0xff))
  in
  let dyn_total = dynsym_size + dynstr_size + rela_size + 64 in
  let dynsym_base = text_base - align_up dyn_total 0x1000 in
  if dynsym_base < 0x10000 then invalid_arg "compile: dynamic sections too large";
  let dynstr_base = dynsym_base + dynsym_size in
  let rela_base = dynstr_base + dynstr_size in

  (* Symbols. *)
  let version_of i =
    if prog.features.symbol_versioning && i mod 5 = 0 then Some "ICFG_1.0"
    else None
  in
  let symbols =
    Symbol.make ~name:"_start" ~addr:(addr "_start")
      ~size:(addr "_start$end" - addr "_start")
      Symbol.Func
    :: List.mapi
         (fun i (f : Ir.func) ->
           let start = addr f.fname and stop = addr (f.fname ^ "$end") in
           Symbol.make ?version:(version_of i) ~name:f.fname ~addr:start
             ~size:(stop - start) Symbol.Func)
         funcs
  in

  (* FDEs: one per function (and _start). *)
  let fdes =
    List.filter_map
      (fun m ->
        let start = addr m.fm_name and stop = addr (m.fm_name ^ "$end") in
        let ra_loc =
          if Arch.has_link_register arch then
            if m.fm_leaf then Ehframe.Ra_in_lr
            else Ehframe.Ra_on_stack (m.fm_frame - 8)
          else Ehframe.Ra_on_stack m.fm_frame
        in
        let frame_size =
          if Arch.has_link_register arch then m.fm_frame else m.fm_frame + 8
        in
        let landing_pads =
          List.map (fun (lo, hi, h) -> (addr lo, addr hi, addr h)) m.fm_pads
        in
        Some { Ehframe.func_start = start; func_end = stop; frame_size; ra_loc; landing_pads })
      ctx.metas
    @ [
        {
          Ehframe.func_start = addr "_start";
          func_end = addr "_start$end";
          frame_size = (if Arch.has_link_register arch then 0 else 8);
          ra_loc =
            (if Arch.has_link_register arch then Ehframe.Ra_in_lr
             else Ehframe.Ra_on_stack 0);
          landing_pads = [];
        };
      ]
  in

  (* Resolve ground truth. *)
  let func_of_addr a =
    match
      List.find_opt
        (fun (f : Ir.func) ->
          a >= addr f.fname && a < addr (f.fname ^ "$end"))
        funcs
    with
    | Some f -> f.fname
    | None -> "_start"
  in
  let jump_tables =
    List.rev_map
      (fun pj ->
        {
          Debug.jt_func = pj.pj_func;
          jt_jump_addr = addr pj.pj_jump;
          jt_table_addr = addr pj.pj_table;
          jt_entry_width = pj.pj_width;
          jt_count = List.length pj.pj_cases;
          jt_targets = List.map addr pj.pj_cases;
          jt_base = (match pj.pj_base with Some b -> addr b | None -> 0);
          jt_scale = pj.pj_scale;
          jt_style = pj.pj_style;
          jt_in_code = pj.pj_in_code;
        })
      ctx.jts
  in
  let fptrs =
    List.rev_map
      (function
        | Pf_mater { label; len; func } ->
            Debug.Fp_mater { at = addr label; len; func; target = addr func }
        | Pf_slot { label; func; adjust } ->
            Debug.Fp_slot
              { slot = addr label; func; target = addr func; adjust })
      ctx.fps
  in
  let func_infos =
    List.map
      (fun m ->
        {
          Debug.fi_name = m.fm_name;
          fi_start = addr m.fm_name;
          fi_end = addr (m.fm_name ^ "$end");
          fi_leaf = m.fm_leaf;
        })
      (List.rev ctx.metas)
  in
  ignore func_of_addr;

  let sections =
    [
      Section.make ~name:".dynsym" ~vaddr:dynsym_base ~perm:Section.r_only
        (filler dynsym_size 3);
      Section.make ~name:".dynstr" ~vaddr:dynstr_base ~perm:Section.r_only
        (filler dynstr_size 5);
      Section.make ~name:".rela_dyn" ~vaddr:rela_base ~perm:Section.r_only
        (filler rela_size 7);
      Section.make ~name:".text" ~vaddr:text_base ~perm:Section.r_x text_bytes;
      Section.make ~name:".rodata" ~vaddr:rodata_base ~perm:Section.r_only
        rodata_bytes;
    ]
    @ (if Bytes.length go_bytes > 0 then
         [
           Section.make ~name:".gopclntab" ~vaddr:go_base ~perm:Section.r_only
             go_bytes;
         ]
       else [])
    @ (if bulk_data > 0 then
         [
           Section.make ~name:".bigdata" ~vaddr:bulk_base ~perm:Section.r_w
             (Bytes.make (align_up bulk_data 0x1000) '\000');
         ]
       else [])
    @ [
        Section.make ~name:".data" ~vaddr:data_base ~perm:Section.r_w data_bytes;
        Section.make ~name:".eh_frame"
          ~vaddr:(align_up data_lay.l_end 0x1000)
          ~perm:Section.r_only
          (filler ((32 * List.length fdes) + 16) 11);
      ]
  in
  let link_reloc_entries =
    if not link_relocs then []
    else
      List.map
        (fun (f : Ir.func) ->
          Icfg_obj.Reloc.link ~offset:(addr f.fname) ~sym:f.fname ~addend:0)
        funcs
  in
  let binary =
    Binary.make ~pie ~relocs ~link_relocs:link_reloc_entries
      ~eh_frame:(Ehframe.of_fdes fdes) ~toc_base:toc
      ~dynsyms:(Array.of_list dyn_names) ~features:prog.features
      ~name:prog.name ~arch ~entry:(addr "_start") ~symbols sections
  in
  let debug = { Debug.jump_tables; fptrs; funcs = func_infos } in
  (binary, debug)
