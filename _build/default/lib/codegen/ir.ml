type binop = Badd | Bsub | Bmul | Band | Bor | Bxor | Bshl | Bshr

type expr =
  | Int of int
  | Var of string
  | Global of string
  | Bin of binop * expr * expr
  | Func_addr of string
  | Addr_of of string
  | Load_mem of Icfg_isa.Insn.width * expr
  | Table_elt of string * expr

type lvalue =
  | Lvar of string
  | Lglobal of string
  | Ltable of string * expr
  | Lmem of Icfg_isa.Insn.width * expr

type callee = Direct of string | Via_ptr of expr | Via_table of string * int

type stmt =
  | Let of string * expr
  | Set of lvalue * expr
  | If of Icfg_isa.Insn.cond * expr * expr * stmt list * stmt list
  | For of string * int * int * stmt list
  | Switch of switch_style * expr * stmt list array * stmt list
  | Call of string option * callee * expr list
  | Tail_call of callee
  | Return of expr
  | Print of expr
  | Throw of expr
  | Try of stmt list * string * stmt list
  | Go_traceback
  | Nops of int

and switch_style = Jt_plain | Jt_spilled_base | Jt_data_table

type func = {
  fname : string;
  params : string list;
  body : stmt list;
  exported : bool;
}

type data =
  | Word of string * int
  | Word_addr of string * string
  | Func_table of string * string list
  | Word_array of string * int list
  | Cstring of string * string

type program = {
  name : string;
  funcs : func list;
  data : data list;
  main : string;
  features : Icfg_obj.Binary.features;
  go_functab : bool;
}

let func ?(exported = false) fname params body = { fname; params; body; exported }

let program ?(data = []) ?(features = Icfg_obj.Binary.no_features)
    ?(go_functab = false) ~name ~main funcs =
  { name; funcs; data; main; features; go_functab }

let locals_of_func f =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let bind v =
    if not (Hashtbl.mem seen v) then (
      Hashtbl.add seen v ();
      out := v :: !out)
  in
  List.iter bind f.params;
  let rec stmt = function
    | Let (v, _) -> bind v
    | Set (_, _) | Return _ | Print _ | Throw _ | Go_traceback | Nops _
    | Tail_call _ ->
        ()
    | If (_, _, _, a, b) ->
        List.iter stmt a;
        List.iter stmt b
    | For (v, _, _, body) ->
        bind v;
        List.iter stmt body
    | Switch (_, _, cases, default) ->
        Array.iter (List.iter stmt) cases;
        List.iter stmt default
    | Call (res, _, _) -> Option.iter bind res
    | Try (body, v, handler) ->
        List.iter stmt body;
        bind v;
        List.iter stmt handler
  in
  List.iter stmt f.body;
  List.rev !out

let check p =
  let fail fmt = Format.kasprintf invalid_arg fmt in
  let have_func n = List.exists (fun f -> f.fname = n) p.funcs in
  if not (have_func p.main) then fail "Ir.check: main %s undefined" p.main;
  let check_callee where = function
    | Direct n when not (have_func n) ->
        fail "Ir.check: %s calls undefined %s" where n
    | Direct _ | Via_ptr _ | Via_table _ -> ()
  in
  let rec check_stmts where stmts =
    let rec go = function
      | [] -> ()
      | [ Tail_call c ] -> check_callee where c
      | Tail_call _ :: _ ->
          fail "Ir.check: %s has a non-final Tail_call" where
      | s :: rest ->
          (match s with
          | Call (_, c, args) ->
              check_callee where c;
              if List.length args > 4 then
                fail "Ir.check: %s passes more than 4 arguments" where
          | If (_, _, _, a, b) ->
              check_stmts where a;
              check_stmts where b
          | For (_, _, _, body) -> check_stmts where body
          | Switch (_, _, cases, default) ->
              Array.iter (check_stmts where) cases;
              check_stmts where default
          | Try (body, _, handler) ->
              check_stmts where body;
              check_stmts where handler
          | Let _ | Set _ | Return _ | Print _ | Throw _ | Go_traceback
          | Nops _ | Tail_call _ ->
              ());
          go rest
    in
    go stmts
  in
  List.iter (fun f -> check_stmts f.fname f.body) p.funcs

(* ------------------------------------------------------------------ *)
(* Pretty-printing (C-like rendering for docs and debugging)           *)
(* ------------------------------------------------------------------ *)

let binop_symbol = function
  | Badd -> "+"
  | Bsub -> "-"
  | Bmul -> "*"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Bshl -> "<<"
  | Bshr -> ">>"

let rec pp_expr ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Var v -> Format.pp_print_string ppf v
  | Global g -> Format.fprintf ppf "%s" g
  | Bin (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Func_addr f -> Format.fprintf ppf "&%s" f
  | Addr_of g -> Format.fprintf ppf "&%s" g
  | Load_mem (w, a) ->
      Format.fprintf ppf "*(i%d*)%a" (8 * Icfg_isa.Insn.width_bytes w) pp_expr a
  | Table_elt (t, i) -> Format.fprintf ppf "%s[%a]" t pp_expr i

let pp_lvalue ppf = function
  | Lvar v -> Format.pp_print_string ppf v
  | Lglobal g -> Format.pp_print_string ppf g
  | Ltable (t, i) -> Format.fprintf ppf "%s[%a]" t pp_expr i
  | Lmem (w, a) ->
      Format.fprintf ppf "*(i%d*)%a" (8 * Icfg_isa.Insn.width_bytes w) pp_expr a

let pp_callee ppf = function
  | Direct f -> Format.pp_print_string ppf f
  | Via_ptr e -> Format.fprintf ppf "(*%a)" pp_expr e
  | Via_table (t, k) -> Format.fprintf ppf "(*%s[%d])" t k

let cond_symbol : Icfg_isa.Insn.cond -> string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_expr ppf args

let rec pp_stmt indent ppf stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Let (v, e) -> Format.fprintf ppf "%slet %s = %a;@." pad v pp_expr e
  | Set (lv, e) -> Format.fprintf ppf "%s%a = %a;@." pad pp_lvalue lv pp_expr e
  | If (c, a, b, yes, no) ->
      Format.fprintf ppf "%sif (%a %s %a) {@." pad pp_expr a (cond_symbol c)
        pp_expr b;
      List.iter (pp_stmt (indent + 2) ppf) yes;
      if no <> [] then begin
        Format.fprintf ppf "%s} else {@." pad;
        List.iter (pp_stmt (indent + 2) ppf) no
      end;
      Format.fprintf ppf "%s}@." pad
  | For (v, lo, hi, body) ->
      Format.fprintf ppf "%sfor (%s = %d; %s < %d; %s++) {@." pad v lo v hi v;
      List.iter (pp_stmt (indent + 2) ppf) body;
      Format.fprintf ppf "%s}@." pad
  | Switch (style, e, cases, default) ->
      Format.fprintf ppf "%sswitch%s (%a) {@." pad
        (match style with
        | Jt_plain -> ""
        | Jt_spilled_base -> " /* spilled base */"
        | Jt_data_table -> " /* writable table */")
        pp_expr e;
      Array.iteri
        (fun k body ->
          Format.fprintf ppf "%s  case %d:@." pad k;
          List.iter (pp_stmt (indent + 4) ppf) body)
        cases;
      Format.fprintf ppf "%s  default:@." pad;
      List.iter (pp_stmt (indent + 4) ppf) default;
      Format.fprintf ppf "%s}@." pad
  | Call (res, callee, args) ->
      (match res with
      | Some v -> Format.fprintf ppf "%slet %s = %a(%a);@." pad v pp_callee callee pp_args args
      | None -> Format.fprintf ppf "%s%a(%a);@." pad pp_callee callee pp_args args)
  | Tail_call callee -> Format.fprintf ppf "%sreturn %a();  /* tail */@." pad pp_callee callee
  | Return e -> Format.fprintf ppf "%sreturn %a;@." pad pp_expr e
  | Print e -> Format.fprintf ppf "%sprint(%a);@." pad pp_expr e
  | Throw e -> Format.fprintf ppf "%sthrow %a;@." pad pp_expr e
  | Try (body, v, handler) ->
      Format.fprintf ppf "%stry {@." pad;
      List.iter (pp_stmt (indent + 2) ppf) body;
      Format.fprintf ppf "%s} catch (%s) {@." pad v;
      List.iter (pp_stmt (indent + 2) ppf) handler;
      Format.fprintf ppf "%s}@." pad
  | Go_traceback -> Format.fprintf ppf "%sruntime.traceback();@." pad
  | Nops n -> Format.fprintf ppf "%s/* %d nops */@." pad n

let pp_func ppf f =
  Format.fprintf ppf "func %s(%s) {@." f.fname (String.concat ", " f.params);
  List.iter (pp_stmt 2 ppf) f.body;
  Format.fprintf ppf "}@."

let pp_data ppf = function
  | Word (g, v) -> Format.fprintf ppf "var %s = %d@." g v
  | Word_addr (g, f) -> Format.fprintf ppf "var %s = &%s@." g f
  | Func_table (t, fs) ->
      Format.fprintf ppf "var %s = [%s]@." t
        (String.concat ", " (List.map (fun f -> "&" ^ f) fs))
  | Word_array (g, vs) ->
      Format.fprintf ppf "var %s = [%d words]@." g (List.length vs)
  | Cstring (g, s) -> Format.fprintf ppf "const %s = %S@." g s

let pp_program ppf p =
  Format.fprintf ppf "// program %s (main = %s)@." p.name p.main;
  List.iter (pp_data ppf) p.data;
  List.iter
    (fun f ->
      Format.pp_print_newline ppf ();
      pp_func ppf f)
    p.funcs
