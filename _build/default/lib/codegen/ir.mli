(** A small structured IR that the synthetic compilers lower to binaries.

    The IR deliberately covers exactly the source-level constructs whose
    compiled forms the paper's analyses must handle: switches (jump tables),
    function pointers (tables, arithmetic on pointers à la Go's
    [&runtime.goexit + 1]), C++-style exceptions, Go-style traceback, direct
    and indirect tail calls, and a few "hard" variants that defeat specific
    analysis assumptions. *)

type binop = Badd | Bsub | Bmul | Band | Bor | Bxor | Bshl | Bshr

type expr =
  | Int of int
  | Var of string  (** local variable or parameter *)
  | Global of string  (** 8-byte global data slot *)
  | Bin of binop * expr * expr
  | Func_addr of string  (** address of a function (a function pointer) *)
  | Addr_of of string  (** address of a global data object *)
  | Load_mem of Icfg_isa.Insn.width * expr  (** load from a computed address *)
  | Table_elt of string * expr  (** [mem(global_table + 8 * index)] *)

type lvalue =
  | Lvar of string
  | Lglobal of string
  | Ltable of string * expr  (** 8-byte store into a global table *)
  | Lmem of Icfg_isa.Insn.width * expr  (** store to a computed address *)

type callee =
  | Direct of string
  | Via_ptr of expr  (** indirect call through a computed function pointer *)
  | Via_table of string * int
      (** [call *(table + 8*k)] — a memory-indirect call through a constant
          slot of a function-pointer table *)

type stmt =
  | Let of string * expr  (** first assignment declares the local *)
  | Set of lvalue * expr
  | If of Icfg_isa.Insn.cond * expr * expr * stmt list * stmt list
  | For of string * int * int * stmt list  (** [for v = lo; v < hi; v++] *)
  | Switch of switch_style * expr * stmt list array * stmt list
      (** cases 0..n-1, then default; compiles to a jump table *)
  | Call of string option * callee * expr list
      (** optional result variable; up to 4 arguments *)
  | Tail_call of callee
      (** must be the last statement of its block; compiles to a full
          epilogue followed by a jump (direct or indirect tail call) *)
  | Return of expr
  | Print of expr  (** observable output *)
  | Throw of expr
  | Try of stmt list * string * stmt list  (** try/catch: body, var, handler *)
  | Go_traceback  (** Go runtime: walk the stack (GC / stack growth) *)
  | Nops of int  (** filler instructions *)

(** How the switch's jump table is compiled. *)
and switch_style =
  | Jt_plain  (** the architecture's default jump-table idiom *)
  | Jt_spilled_base
      (** the table base is spilled to the stack and reloaded before use;
          resolvable only by an analysis that tracks memory (section 5.1's
          "values spilled to and reloaded from memory") *)
  | Jt_data_table
      (** dispatch through a writable in-data pointer table: genuinely
          unresolvable statically, and not a tail call (the function has
          real code gaps), so the function must be marked uninstrumentable *)

type func = {
  fname : string;
  params : string list;
  body : stmt list;
  exported : bool;
      (** address-taken / externally visible; its entry may be reached by
          unrewritten pointers *)
}

(** Global data definitions. *)
type data =
  | Word of string * int  (** one 8-byte slot with an integer value *)
  | Word_addr of string * string
      (** one 8-byte slot holding the address of a function — a data-resident
          function pointer (gets an R_RELATIVE relocation under PIE) *)
  | Func_table of string * string list  (** array of function pointers *)
  | Word_array of string * int list
  | Cstring of string * string  (** constant bytes in [.rodata] *)

type program = {
  name : string;
  funcs : func list;
  data : data list;
  main : string;  (** name of the entry function *)
  features : Icfg_obj.Binary.features;
  go_functab : bool;
      (** synthesize Go's [runtime.findfunc]/[runtime.pcvalue] over a
          generated [.gopclntab] function table *)
}

val func : ?exported:bool -> string -> string list -> stmt list -> func

val program :
  ?data:data list ->
  ?features:Icfg_obj.Binary.features ->
  ?go_functab:bool ->
  name:string ->
  main:string ->
  func list ->
  program

val locals_of_func : func -> string list
(** Parameters followed by every variable bound by [Let], [For], a call
    result, or a catch clause, in first-use order. *)

val check : program -> unit
(** Sanity checks: [main] exists, call targets exist, [Tail_call] ends its
    statement list, argument counts are at most 4.
    Raises [Invalid_argument]. *)

(** {1 Pretty-printing}

    A C-like rendering of programs, used by the CLI and for debugging
    generated workloads. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : int -> Format.formatter -> stmt -> unit
val pp_func : Format.formatter -> func -> unit
val pp_program : Format.formatter -> program -> unit
