(** Compiler ground truth.

    The synthetic compilers record exactly where they emitted jump tables and
    function pointers. This information is {e never} given to the rewriter —
    the analyses in [icfg_analysis] must rediscover it from the bytes — but
    the test suite uses it to validate analysis precision, and the failure
    model uses construct styles to reason about which analyses should
    struggle. *)

type jump_table = {
  jt_func : string;  (** containing function *)
  jt_jump_addr : int;  (** address of the indirect jump *)
  jt_table_addr : int;
  jt_entry_width : Icfg_isa.Insn.width;
  jt_count : int;
  jt_targets : int list;  (** resolved case addresses *)
  jt_base : int;  (** 0 when entries are absolute *)
  jt_scale : int;  (** target = base + scale * entry (scale 1 for absolute) *)
  jt_style : Ir.switch_style;
  jt_in_code : bool;  (** table embedded in [.text] (ppc64le) *)
}

(** A function-pointer creation site. *)
type fptr =
  | Fp_slot of { slot : int; func : string; target : int; adjust : int }
      (** a data word at address [slot] holding [target + adjust] where
          [target] is the entry of [func] *)
  | Fp_mater of { at : int; len : int; func : string; target : int }
      (** an address-materialization instruction sequence in code *)

type func_info = {
  fi_name : string;
  fi_start : int;
  fi_end : int;
  fi_leaf : bool;
}

type t = {
  jump_tables : jump_table list;
  fptrs : fptr list;
  funcs : func_info list;
}

val empty : t
val jump_tables_of : t -> string -> jump_table list
(** Ground-truth tables of one function. *)

val func_info : t -> string -> func_info option
val pp : Format.formatter -> t -> unit
