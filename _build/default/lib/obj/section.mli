(** Sections of the ELF-like binary container.

    A section is a named, contiguous byte range at a fixed virtual address.
    Only loaded sections count towards the binary size reported by
    {!Binary.loaded_size} (mirroring binutils [size], which the paper uses
    for its size-increase numbers in Table 3). *)

type perm = { read : bool; write : bool; execute : bool }

val r_x : perm
(** read + execute (code sections) *)

val r_only : perm
(** read-only (e.g. [.rodata]) *)

val r_w : perm
(** read + write (e.g. [.data]) *)

type t = {
  name : string;
  vaddr : int;
  data : Bytes.t;
  perm : perm;
  loaded : bool;
}

val make : ?loaded:bool -> name:string -> vaddr:int -> perm:perm -> Bytes.t -> t

val size : t -> int
val end_vaddr : t -> int
(** [vaddr + size]: one past the last byte. *)

val contains : t -> int -> bool
(** Whether a virtual address falls inside the section. *)

val rename : t -> string -> t

val pp : Format.formatter -> t -> unit
