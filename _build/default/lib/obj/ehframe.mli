(** DWARF-like stack-unwinding metadata ([.eh_frame] + simplified LSDA).

    Each function gets one frame description entry (FDE) keyed by its
    {e original} address range. The paper's runtime RA translation leaves
    this section untouched and instead translates relocated return addresses
    back to original ones before each unwind step (section 6); this module is
    therefore always consulted with original-binary PCs. *)

type ra_location =
  | Ra_on_stack of int
      (** return address stored at [sp + offset] while inside the body
          (x86-64 push semantics, or a RISC prologue save slot) *)
  | Ra_in_lr  (** leaf frame on ppc64le/aarch64: RA still in the link register *)

type fde = {
  func_start : int;
  func_end : int;  (** exclusive *)
  frame_size : int;  (** stack bytes the prologue allocated *)
  ra_loc : ra_location;
  landing_pads : (int * int * int) list;
      (** [(lo, hi, handler)] triples: an exception unwinding through a PC in
          [lo, hi) transfers to [handler] (a catch-block address in the
          original code) — the simplified LSDA *)
}

type t

val empty : t
val of_fdes : fde list -> t
val add : t -> fde -> t
val find : t -> int -> fde option
(** Look up the FDE covering a PC. *)

val fdes : t -> fde list

(** [handler_for fde ~pc] is the landing pad covering [pc], if any. *)
val handler_for : fde -> pc:int -> int option
val pp : Format.formatter -> t -> unit
