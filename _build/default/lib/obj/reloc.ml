type kind = R_relative | R_link of string

type t = { offset : int; kind : kind; addend : int }

let relative ~offset ~addend = { offset; kind = R_relative; addend }
let link ~offset ~sym ~addend = { offset; kind = R_link sym; addend }
let is_runtime r = match r.kind with R_relative -> true | R_link _ -> false

let pp ppf r =
  match r.kind with
  | R_relative ->
      Format.fprintf ppf "0x%x: R_RELATIVE %+d" r.offset r.addend
  | R_link s -> Format.fprintf ppf "0x%x: R_LINK %s%+d" r.offset s r.addend
