(** Symbols: functions, data objects, and dynamic (runtime-library) entries. *)

type kind =
  | Func
  | Object
  | Dynamic  (** an imported dynamic symbol, resolved by the loader *)

type t = {
  name : string;
  addr : int;
  size : int;
  kind : kind;
  global : bool;
  version : string option;
      (** symbol versioning information (e.g. ["GLIBCXX_3.4"]); present in
          C++ libraries and known to defeat the IR-lowering baseline
          (section 9 of the paper) *)
}

val make :
  ?global:bool -> ?version:string -> name:string -> addr:int -> size:int ->
  kind -> t

val is_func : t -> bool
val contains : t -> int -> bool
val pp : Format.formatter -> t -> unit
val compare_by_addr : t -> t -> int
