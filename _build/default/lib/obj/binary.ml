type lang = C | Cpp | Fortran | Rust | Go

let lang_name = function
  | C -> "C"
  | Cpp -> "C++"
  | Fortran -> "Fortran"
  | Rust -> "Rust"
  | Go -> "Go"

type features = {
  langs : lang list;
  cpp_exceptions : bool;
  go_runtime : bool;
  go_vtab : bool;
  rust_metadata : bool;
  symbol_versioning : bool;
}

let no_features =
  {
    langs = [ C ];
    cpp_exceptions = false;
    go_runtime = false;
    go_vtab = false;
    rust_metadata = false;
    symbol_versioning = false;
  }

type t = {
  name : string;
  arch : Icfg_isa.Arch.t;
  pie : bool;
  entry : int;
  sections : Section.t list;
  symbols : Symbol.t list;
  relocs : Reloc.t list;
  link_relocs : Reloc.t list;
  eh_frame : Ehframe.t;
  toc_base : int;
  dynsyms : string array;
  features : features;
}

let check_no_overlap sections =
  let rec go = function
    | a :: (b :: _ as rest) ->
        if Section.end_vaddr a > b.Section.vaddr then
          invalid_arg
            (Printf.sprintf "Binary.make: sections %s and %s overlap"
               a.Section.name b.Section.name);
        go rest
    | _ -> ()
  in
  go sections

let sort_sections sections =
  List.sort (fun a b -> compare a.Section.vaddr b.Section.vaddr) sections

let make ?(pie = false) ?(relocs = []) ?(link_relocs = [])
    ?(eh_frame = Ehframe.empty) ?(toc_base = 0) ?(dynsyms = [||])
    ?(features = no_features) ~name ~arch ~entry ~symbols sections =
  let sections = sort_sections sections in
  check_no_overlap sections;
  let symbols = List.sort Symbol.compare_by_addr symbols in
  {
    name;
    arch;
    pie;
    entry;
    sections;
    symbols;
    relocs;
    link_relocs;
    eh_frame;
    toc_base;
    dynsyms;
    features;
  }

let section t name = List.find_opt (fun s -> s.Section.name = name) t.sections

let section_exn t name =
  match section t name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Binary: no section %s in %s" name t.name)

let section_at t addr = List.find_opt (fun s -> Section.contains s addr) t.sections
let text t = match section t ".text" with Some s -> s | None -> raise Not_found
let func_symbols t = List.filter Symbol.is_func t.symbols
let symbol t name = List.find_opt (fun (s : Symbol.t) -> s.name = name) t.symbols

let symbol_at t addr =
  List.find_opt (fun s -> Symbol.is_func s && Symbol.contains s addr) t.symbols

let with_sections t sections =
  let sections = sort_sections sections in
  check_no_overlap sections;
  { t with sections }

let add_section t s = with_sections t (s :: t.sections)

let map_section t name f =
  let found = ref false in
  let sections =
    List.map
      (fun s ->
        if s.Section.name = name then (
          found := true;
          f s)
        else s)
      t.sections
  in
  if not !found then
    invalid_arg (Printf.sprintf "Binary.map_section: no section %s" name);
  with_sections t sections

let locate t addr n =
  match section_at t addr with
  | Some s when addr + n <= Section.end_vaddr s -> (s.Section.data, addr - s.Section.vaddr)
  | _ ->
      invalid_arg
        (Printf.sprintf "Binary %s: address 0x%x (+%d) is not mapped" t.name
           addr n)

let sign_extend v bits =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let read8 t addr =
  let b, off = locate t addr 1 in
  sign_extend (Bytes.get_uint8 b off) 8

let read16 t addr =
  let b, off = locate t addr 2 in
  sign_extend (Bytes.get_uint16_le b off) 16

let read32 t addr =
  let b, off = locate t addr 4 in
  Int32.to_int (Bytes.get_int32_le b off)

let read64 t addr =
  let b, off = locate t addr 8 in
  Int64.to_int (Bytes.get_int64_le b off)

let read t addr (w : Icfg_isa.Insn.width) =
  match w with
  | W8 -> read8 t addr
  | W16 -> read16 t addr
  | W32 -> read32 t addr
  | W64 -> read64 t addr

let write8 t addr v =
  let b, off = locate t addr 1 in
  Bytes.set_uint8 b off (v land 0xff)

let write16 t addr v =
  let b, off = locate t addr 2 in
  Bytes.set_uint16_le b off (v land 0xffff)

let write32 t addr v =
  let b, off = locate t addr 4 in
  Bytes.set_int32_le b off (Int32.of_int v)

let write64 t addr v =
  let b, off = locate t addr 8 in
  Bytes.set_int64_le b off (Int64.of_int v)

let write t addr (w : Icfg_isa.Insn.width) v =
  match w with
  | W8 -> write8 t addr v
  | W16 -> write16 t addr v
  | W32 -> write32 t addr v
  | W64 -> write64 t addr v

let write_string t addr s =
  let b, off = locate t addr (String.length s) in
  Bytes.blit_string s 0 b off (String.length s)

let copy t =
  {
    t with
    sections =
      List.map
        (fun s -> { s with Section.data = Bytes.copy s.Section.data })
        t.sections;
  }

let loaded_size t =
  List.fold_left
    (fun acc s -> if s.Section.loaded then acc + Section.size s else acc)
    0 t.sections

let code_end t =
  List.fold_left
    (fun acc s -> if s.Section.loaded then max acc (Section.end_vaddr s) else acc)
    0 t.sections

let decode_at t addr =
  match section_at t addr with
  | Some s when s.Section.perm.execute ->
      Icfg_isa.Encode.decode_bytes t.arch s.Section.data ~pos:(addr - s.Section.vaddr)
  | Some s ->
      invalid_arg
        (Printf.sprintf "Binary.decode_at: 0x%x is in non-executable %s" addr
           s.Section.name)
  | None -> invalid_arg (Printf.sprintf "Binary.decode_at: 0x%x unmapped" addr)

let pp ppf t =
  Format.fprintf ppf "%s (%a%s) entry=0x%x@." t.name Icfg_isa.Arch.pp t.arch
    (if t.pie then ", PIE" else ", no-pie")
    t.entry;
  List.iter (fun s -> Format.fprintf ppf "  %a@." Section.pp s) t.sections;
  Format.fprintf ppf "  %d symbols, %d runtime relocs, %d link relocs@."
    (List.length t.symbols) (List.length t.relocs)
    (List.length t.link_relocs)
