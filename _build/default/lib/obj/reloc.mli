(** Relocation entries.

    Two families matter to the paper:
    - {e run-time} relocations ([R_relative]), present in PIE binaries and
      consumed by the loader; Egalito/RetroWrite require them, our rewriter
      merely exploits them when present;
    - {e link-time} relocations ([R_link]), normally discarded by the linker
      and only retained under [-Wl,-q]; BOLT requires them for function
      reordering (section 8.3). *)

type kind =
  | R_relative
      (** the slot at [offset] holds [load_base + addend] after loading *)
  | R_link of string
      (** link-time relocation against the named symbol (+[addend]) *)

type t = { offset : int; kind : kind; addend : int }

val relative : offset:int -> addend:int -> t
val link : offset:int -> sym:string -> addend:int -> t
val is_runtime : t -> bool
val pp : Format.formatter -> t -> unit
