type ra_location = Ra_on_stack of int | Ra_in_lr

type fde = {
  func_start : int;
  func_end : int;
  frame_size : int;
  ra_loc : ra_location;
  landing_pads : (int * int * int) list;
}

(* FDEs sorted by start address for binary search. *)
type t = fde array

let empty = [||]

let of_fdes l =
  let a = Array.of_list l in
  Array.sort (fun x y -> compare x.func_start y.func_start) a;
  a

let add t fde = of_fdes (fde :: Array.to_list t)

let find t pc =
  let lo = ref 0 and hi = ref (Array.length t - 1) and res = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let f = t.(mid) in
    if pc < f.func_start then hi := mid - 1
    else if pc >= f.func_end then lo := mid + 1
    else (
      res := Some f;
      lo := !hi + 1)
  done;
  !res

let fdes t = Array.to_list t
let handler_for fde ~pc =
  List.find_map
    (fun (lo, hi, h) -> if pc >= lo && pc < hi then Some h else None)
    fde.landing_pads

let pp ppf t =
  Array.iter
    (fun f ->
      Format.fprintf ppf "FDE [0x%x, 0x%x) frame=%d ra=%s pads=%d@." f.func_start
        f.func_end f.frame_size
        (match f.ra_loc with
        | Ra_on_stack o -> Printf.sprintf "sp+%d" o
        | Ra_in_lr -> "lr")
        (List.length f.landing_pads))
    t
