(** On-disk serialization of binaries.

    A compact, versioned container format (magic ["ICFG1"]) so rewritten
    binaries can be written out, inspected later, and re-run — what a real
    binary rewriter produces. Round-trips every field of {!Binary.t}. *)

val to_bytes : Binary.t -> Bytes.t
val of_bytes : Bytes.t -> Binary.t
(** Raises [Invalid_argument] on a bad magic, version, or truncation. *)

val save : string -> Binary.t -> unit
(** Write to a file. *)

val load : string -> Binary.t
(** Read from a file; raises [Sys_error] or [Invalid_argument]. *)
