type perm = { read : bool; write : bool; execute : bool }

let r_x = { read = true; write = false; execute = true }
let r_only = { read = true; write = false; execute = false }
let r_w = { read = true; write = true; execute = false }

type t = {
  name : string;
  vaddr : int;
  data : Bytes.t;
  perm : perm;
  loaded : bool;
}

let make ?(loaded = true) ~name ~vaddr ~perm data =
  if vaddr < 0 then invalid_arg "Section.make: negative vaddr";
  { name; vaddr; data; perm; loaded }

let size s = Bytes.length s.data
let end_vaddr s = s.vaddr + size s
let contains s a = a >= s.vaddr && a < end_vaddr s
let rename s name = { s with name }

let pp ppf s =
  Format.fprintf ppf "%-12s 0x%08x..0x%08x %c%c%c%s" s.name s.vaddr
    (end_vaddr s)
    (if s.perm.read then 'r' else '-')
    (if s.perm.write then 'w' else '-')
    (if s.perm.execute then 'x' else '-')
    (if s.loaded then "" else " (unloaded)")
