(** The ELF-like binary container.

    A binary is a set of sections, symbols, relocations and unwinding
    metadata for one architecture. Binaries are produced by the synthetic
    compilers in [icfg_codegen], analysed by [icfg_analysis], transformed by
    the rewriters, and executed by the VM in [icfg_runtime]. *)

type lang = C | Cpp | Fortran | Rust | Go

val lang_name : lang -> string

(** Source-level features recorded by the synthetic compiler. These mirror
    the binary metadata that real tools trip over: Egalito-style IR lowering
    fails on C++ exceptions, Rust metadata, Go binaries and symbol
    versioning (sections 8 and 9 of the paper). *)
type features = {
  langs : lang list;
  cpp_exceptions : bool;
  go_runtime : bool;  (** Go-style native stack traceback / GC unwinding *)
  go_vtab : bool;  (** Go interface tables: function pointers the
                       func-ptr analysis cannot rewrite safely *)
  rust_metadata : bool;
  symbol_versioning : bool;
}

val no_features : features

type t = {
  name : string;
  arch : Icfg_isa.Arch.t;
  pie : bool;
  entry : int;
  sections : Section.t list;  (** sorted by virtual address *)
  symbols : Symbol.t list;  (** sorted by address *)
  relocs : Reloc.t list;  (** run-time relocations (.rela_dyn) *)
  link_relocs : Reloc.t list;  (** retained only under -Wl,-q-style builds *)
  eh_frame : Ehframe.t;
  toc_base : int;  (** ppc64le TOC base address (0 elsewhere) *)
  dynsyms : string array;  (** dynamic symbol names, indexed by [CallRt] *)
  features : features;
}

val make :
  ?pie:bool ->
  ?relocs:Reloc.t list ->
  ?link_relocs:Reloc.t list ->
  ?eh_frame:Ehframe.t ->
  ?toc_base:int ->
  ?dynsyms:string array ->
  ?features:features ->
  name:string ->
  arch:Icfg_isa.Arch.t ->
  entry:int ->
  symbols:Symbol.t list ->
  Section.t list ->
  t
(** Build a binary; sections and symbols are sorted, and overlapping
    sections are rejected with [Invalid_argument]. *)

(** {1 Section and symbol access} *)

val section : t -> string -> Section.t option
val section_exn : t -> string -> Section.t
val section_at : t -> int -> Section.t option
val text : t -> Section.t
(** The [.text] section. Raises [Not_found] if absent. *)

val func_symbols : t -> Symbol.t list
val symbol : t -> string -> Symbol.t option
val symbol_at : t -> int -> Symbol.t option
(** The function symbol whose range covers an address. *)

val with_sections : t -> Section.t list -> t
val add_section : t -> Section.t -> t
val map_section : t -> string -> (Section.t -> Section.t) -> t

(** {1 Byte access by virtual address} *)

val read8 : t -> int -> int
val read16 : t -> int -> int
val read32 : t -> int -> int
(** Sign-extended reads. Raise [Invalid_argument] outside any section. *)

val read64 : t -> int -> int
val read : t -> int -> Icfg_isa.Insn.width -> int
val write8 : t -> int -> int -> unit
val write16 : t -> int -> int -> unit
val write32 : t -> int -> int -> unit
val write64 : t -> int -> int -> unit
val write : t -> int -> Icfg_isa.Insn.width -> int -> unit
val write_string : t -> int -> string -> unit
(** In-place mutation of section bytes (the container shares [Bytes.t]). *)

val copy : t -> t
(** Deep copy (fresh byte buffers) so rewriting never mutates the input. *)

(** {1 Measures} *)

val loaded_size : t -> int
(** Total size of loaded sections — what binutils [size] reports; used for
    the paper's size-increase numbers. *)

val code_end : t -> int
(** End of the highest loaded section: where new sections may be placed. *)

val decode_at : t -> int -> Icfg_isa.Insn.t * int
(** Decode the instruction at a virtual address inside an executable
    section. *)

val pp : Format.formatter -> t -> unit
