lib/obj/ehframe.mli: Format
