lib/obj/reloc.mli: Format
