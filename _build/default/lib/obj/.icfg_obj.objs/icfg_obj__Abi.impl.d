lib/obj/abi.ml:
