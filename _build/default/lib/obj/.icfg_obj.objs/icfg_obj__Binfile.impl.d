lib/obj/binfile.ml: Array Binary Buffer Bytes Ehframe Fun Icfg_isa Int64 List Printf Reloc Section String Symbol
