lib/obj/binary.ml: Bytes Ehframe Format Icfg_isa Int32 Int64 List Printf Reloc Section String Symbol Sys
