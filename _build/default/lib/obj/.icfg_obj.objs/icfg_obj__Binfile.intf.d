lib/obj/binfile.mli: Binary Bytes
