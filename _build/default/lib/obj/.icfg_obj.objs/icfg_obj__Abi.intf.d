lib/obj/abi.mli:
