lib/obj/section.ml: Bytes Format
