lib/obj/reloc.ml: Format
