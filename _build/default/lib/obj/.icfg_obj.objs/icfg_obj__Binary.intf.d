lib/obj/binary.mli: Ehframe Format Icfg_isa Reloc Section Symbol
