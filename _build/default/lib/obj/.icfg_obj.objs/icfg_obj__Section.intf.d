lib/obj/section.mli: Bytes Format
