lib/obj/symbol.ml: Format
