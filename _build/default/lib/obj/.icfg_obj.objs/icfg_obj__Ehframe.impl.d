lib/obj/ehframe.ml: Array Format List Printf
