(** Well-known dynamic-symbol names of the runtime library.

    The rewritten binary calls into the LD_PRELOAD-style runtime library
    through these dynamic symbols (the rewriter appends them to the moved
    [.dynsym]); the VM binds them to OCaml routines. *)

val go_walk : string
(** The Go traceback walker invoked by [Go_traceback] (models the Go
    runtime's GC/stack-growth stack walks). *)

val count : string
(** Block-execution counting instrumentation payload. *)

val translate_r0 : string
(** Runtime RA translation applied to the PC argument in [r0] — the entry
    instrumentation of [runtime.findfunc]/[runtime.pcvalue] (section 6.2). *)

val empty_payload : string
(** A no-op instrumentation payload (used to test snippet plumbing). *)

val dyn_translate : string
(** Multiverse-style dynamic-translation routine: translates the indirect
    control-flow target in a site-specific register through the
    original-to-relocated map before the transfer executes. *)
