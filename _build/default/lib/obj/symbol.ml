type kind = Func | Object | Dynamic

type t = {
  name : string;
  addr : int;
  size : int;
  kind : kind;
  global : bool;
  version : string option;
}

let make ?(global = true) ?version ~name ~addr ~size kind =
  { name; addr; size; kind; global; version }

let is_func s = s.kind = Func
let contains s a = a >= s.addr && a < s.addr + s.size

let pp ppf s =
  Format.fprintf ppf "%s%s @ 0x%x (%d bytes, %s)" s.name
    (match s.version with Some v -> "@" ^ v | None -> "")
    s.addr s.size
    (match s.kind with Func -> "func" | Object -> "object" | Dynamic -> "dyn")

let compare_by_addr a b = compare (a.addr, a.name) (b.addr, b.name)
