type t = X86_64 | Ppc64le | Aarch64

let all = [ X86_64; Ppc64le; Aarch64 ]

let name = function
  | X86_64 -> "x86-64"
  | Ppc64le -> "ppc64le"
  | Aarch64 -> "aarch64"

let of_string s =
  match String.lowercase_ascii s with
  | "x86-64" | "x86_64" | "amd64" -> Some X86_64
  | "ppc64le" | "ppc" -> Some Ppc64le
  | "aarch64" | "arm64" -> Some Aarch64
  | _ -> None

let pp ppf a = Format.pp_print_string ppf (name a)
let equal (a : t) b = a = b
let is_fixed_length = function X86_64 -> false | Ppc64le | Aarch64 -> true
let insn_alignment = function X86_64 -> 1 | Ppc64le | Aarch64 -> 4
let min_insn_size = function X86_64 -> 1 | Ppc64le | Aarch64 -> 4

let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let short_branch_range = function
  | X86_64 -> 128
  | Ppc64le -> mib 32
  | Aarch64 -> mib 128

let long_branch_range = function
  | X86_64 -> gib 2
  | Ppc64le -> gib 2
  | Aarch64 -> gib 4

let has_link_register = function X86_64 -> false | Ppc64le | Aarch64 -> true
let pointer_size _ = 8

let cond_branch_range = function
  | X86_64 -> gib 2
  | Ppc64le | Aarch64 -> 32 * 1024

let max_padding = function X86_64 -> 16 | Ppc64le | Aarch64 -> 12
let jump_tables_in_code = function Ppc64le -> true | X86_64 | Aarch64 -> false

let narrow_jump_table_entries = function
  | Aarch64 -> true
  | X86_64 | Ppc64le -> false
