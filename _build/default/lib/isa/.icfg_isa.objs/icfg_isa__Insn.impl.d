lib/isa/insn.ml: Format List Printf Reg
