lib/isa/trampoline.mli: Arch Format Reg
