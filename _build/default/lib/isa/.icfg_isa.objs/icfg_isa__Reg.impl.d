lib/isa/reg.ml: Arch Format List Map Printf Set Stdlib
