lib/isa/encode.mli: Arch Bytes Insn
