lib/isa/mater.ml: Arch Insn Reg
