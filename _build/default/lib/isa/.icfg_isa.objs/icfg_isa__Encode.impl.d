lib/isa/encode.ml: Arch Bytes Char Format Insn Int32 Int64 Printf Reg String Sys
