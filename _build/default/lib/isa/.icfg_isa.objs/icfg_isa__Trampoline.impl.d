lib/isa/trampoline.ml: Arch Encode Format Insn List Reg String
