lib/isa/reg.mli: Arch Format Map Set
