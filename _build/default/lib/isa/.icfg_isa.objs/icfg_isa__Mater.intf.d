lib/isa/mater.mli: Arch Insn Reg
