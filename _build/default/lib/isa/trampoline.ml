type kind =
  | Short
  | Long of Reg.t option
  | Long_save_restore of Reg.t
  | Trap_tramp

let pp_kind ppf = function
  | Short -> Format.pp_print_string ppf "short"
  | Long None -> Format.pp_print_string ppf "long"
  | Long (Some r) -> Format.fprintf ppf "long(%a)" Reg.pp r
  | Long_save_restore r -> Format.fprintf ppf "long-save-restore(%a)" Reg.pp r
  | Trap_tramp -> Format.pp_print_string ppf "trap"

let trap_len arch = Encode.length arch Insn.Trap

let len arch = function
  | Short -> Encode.short_jmp_len arch
  | Long _ -> (
      match arch with
      | Arch.X86_64 -> 5
      | Arch.Ppc64le -> 16 (* addis, addi, mtspr, bctar *)
      | Arch.Aarch64 -> 12 (* adrp, add, br *))
  | Long_save_restore _ -> 24 (* store, addis, addi, mtspr, load, bctar *)
  | Trap_tramp -> trap_len arch

let short_reaches arch ~at ~target =
  Encode.jmp_fits arch ~wide:false (target - at)

(* Split an offset into a high/low pair such that
   (hi lsl 16) + sign_extend lo 16 = off. *)
let split_hi_lo off =
  let hi = (off + 0x8000) asr 16 in
  let lo = off - (hi lsl 16) in
  (hi, lo)

let long_reaches arch ~at ~target ~toc =
  match arch with
  | Arch.X86_64 ->
      let d = target - at in
      d >= -0x80000000 && d < 0x80000000
  | Arch.Ppc64le ->
      let off = target - toc in
      let hi, _ = split_hi_lo off in
      hi >= -0x8000 && hi < 0x8000
  | Arch.Aarch64 ->
      let pages = ((target land lnot 4095) - (at land lnot 4095)) asr 12 in
      pages >= -(1 lsl 20) && pages < 1 lsl 20

let concat_encoded arch insns =
  String.concat "" (List.map (Encode.encode arch) insns)

let emit arch ~at ~target ~toc kind =
  match (kind, arch) with
  | Short, _ -> Encode.encode_jmp arch ~wide:false (target - at)
  | Long _, Arch.X86_64 -> Encode.encode_jmp arch ~wide:true (target - at)
  | Long (Some reg), Arch.Ppc64le ->
      let hi, lo = split_hi_lo (target - toc) in
      concat_encoded arch
        [
          Insn.Addis (reg, Reg.toc, hi);
          Insn.Add (reg, Imm lo);
          Insn.Mttar reg;
          Insn.Btar;
        ]
  | Long_save_restore reg, Arch.Ppc64le ->
      let hi, lo = split_hi_lo (target - toc) in
      concat_encoded arch
        [
          Insn.Store (W64, BSp, -8, reg);
          Insn.Addis (reg, Reg.toc, hi);
          Insn.Add (reg, Imm lo);
          Insn.Mttar reg;
          Insn.Load (W64, reg, BSp, -8);
          Insn.Btar;
        ]
  | Long (Some reg), Arch.Aarch64 ->
      (* adrp computes relative to the page of its own address. *)
      let adrp_at = at in
      let page_delta = (target land lnot 4095) - (adrp_at land lnot 4095) in
      concat_encoded arch
        [
          Insn.Adrp (reg, page_delta);
          Insn.Add (reg, Imm (target land 4095));
          Insn.IndJmp reg;
        ]
  | Trap_tramp, _ -> Encode.encode arch Insn.Trap
  | Long None, (Arch.Ppc64le | Arch.Aarch64) ->
      raise (Encode.Not_encodable "long trampoline needs a scratch register")
  | Long_save_restore _, (Arch.X86_64 | Arch.Aarch64) ->
      raise
        (Encode.Not_encodable "save/restore trampoline is ppc64le-specific")

let pick_dead arch dead =
  (* Prefer a high caller-saved register; never use the ppc64le TOC. *)
  let candidates = List.rev (Reg.caller_saved arch) in
  List.find_opt (fun r -> Reg.Set.mem r dead) candidates

let select arch ~at ~space ~target ~dead ~toc =
  if space >= len arch Short && short_reaches arch ~at ~target then Some Short
  else
    match arch with
    | Arch.X86_64 ->
        if space >= len arch (Long None) && long_reaches arch ~at ~target ~toc
        then Some (Long None)
        else None
    | Arch.Ppc64le ->
        if not (long_reaches arch ~at ~target ~toc) then None
        else if space >= len arch (Long None) then
          match pick_dead arch dead with
          | Some r -> Some (Long (Some r))
          | None ->
              if space >= len arch (Long_save_restore Reg.r12) then
                Some (Long_save_restore Reg.r12)
              else None
        else None
    | Arch.Aarch64 ->
        if space >= len arch (Long None) && long_reaches arch ~at ~target ~toc
        then
          match pick_dead arch dead with
          | Some r -> Some (Long (Some r))
          | None -> None
        else None

type row = {
  arch : Arch.t;
  instructions : string;
  range : int;
  length_desc : string;
}

let catalogue =
  [
    {
      arch = Arch.X86_64;
      instructions = "2-byte branch";
      range = 128;
      length_desc = "2B";
    };
    {
      arch = Arch.X86_64;
      instructions = "5-byte branch";
      range = 2 * 1024 * 1024 * 1024;
      length_desc = "5B";
    };
    {
      arch = Arch.Ppc64le;
      instructions = "b";
      range = 32 * 1024 * 1024;
      length_desc = "1I";
    };
    {
      arch = Arch.Ppc64le;
      instructions =
        "addis reg, r2, off@high; addi reg, reg, off@low; mtspr tar, reg; \
         bctar";
      range = 2 * 1024 * 1024 * 1024;
      length_desc = "4I";
    };
    {
      arch = Arch.Aarch64;
      instructions = "b";
      range = 128 * 1024 * 1024;
      length_desc = "1I";
    };
    {
      arch = Arch.Aarch64;
      instructions = "adrp reg, off@high; add reg, reg, off@low; br reg";
      range = 4 * 1024 * 1024 * 1024;
      length_desc = "3I";
    };
  ]
