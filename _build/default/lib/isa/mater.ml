let split_hi_lo off =
  let hi = (off + 0x8000) asr 16 in
  let lo = off - (hi lsl 16) in
  (hi, lo)

let insns arch ~pie ~toc ~at ~target ~reg =
  match arch with
  | Arch.X86_64 ->
      if pie then [ Insn.Lea (reg, target - at) ]
      else [ Insn.Movabs (reg, target) ]
  | Arch.Ppc64le ->
      let hi, lo = split_hi_lo (target - toc) in
      [ Insn.Addis (reg, Reg.toc, hi); Insn.Add (reg, Imm lo) ]
  | Arch.Aarch64 ->
      let page_delta = (target land lnot 4095) - (at land lnot 4095) in
      [ Insn.Adrp (reg, page_delta); Insn.Add (reg, Imm (target land 4095)) ]

let length arch ~pie =
  match arch with
  | Arch.X86_64 -> if pie then 7 else 10
  | Arch.Ppc64le | Arch.Aarch64 -> 8
