(** Position-independence-safe materialization of code/data addresses.

    Both the synthetic compilers and the rewriter need to load an absolute
    address into a register using only instructions that stay correct under
    PIE loading:
    - x86-64: [movabs] for position-dependent code, RIP-relative [lea] for PIE;
    - ppc64le: [addis reg, r2, hi; addi reg, lo] relative to the TOC base
      (valid in both modes since the loader materializes [r2]);
    - aarch64: [adrp reg; add reg, lo12] (PC-relative, valid in both modes). *)

val insns :
  Arch.t -> pie:bool -> toc:int -> at:int -> target:int -> reg:Reg.t ->
  Insn.t list
(** Instruction sequence that leaves [target] in [reg] when executed at
    address [at] ([at] is the address of the first instruction of the
    returned sequence). *)

val length : Arch.t -> pie:bool -> int
(** Encoded length of the sequence (independent of addresses). *)

val split_hi_lo : int -> int * int
(** [split_hi_lo off] is [(hi, lo)] with
    [(hi lsl 16) + lo = off] and [lo] in [-32768, 32767]. *)
