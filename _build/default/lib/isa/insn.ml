type width = W8 | W16 | W32 | W64

let width_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

let width_of_bytes = function
  | 1 -> W8
  | 2 -> W16
  | 4 -> W32
  | 8 -> W64
  | n -> invalid_arg (Printf.sprintf "Insn.width_of_bytes: %d" n)

type cond = Eq | Ne | Lt | Le | Gt | Ge

let negate_cond = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

type operand = Reg of Reg.t | Imm of int
type base = BReg of Reg.t | BSp

type t =
  | Nop
  | Halt
  | Trap
  | Illegal
  | Mov of Reg.t * operand
  | Movhi of Reg.t * int
  | Orlo of Reg.t * int
  | Movabs of Reg.t * int
  | Add of Reg.t * operand
  | Sub of Reg.t * operand
  | Mul of Reg.t * operand
  | And_ of Reg.t * operand
  | Or_ of Reg.t * operand
  | Xor of Reg.t * operand
  | Shl of Reg.t * int
  | Shr of Reg.t * int
  | Cmp of Reg.t * operand
  | Load of width * Reg.t * base * int
  | Store of width * base * int * Reg.t
  | LoadIdx of width * Reg.t * Reg.t * Reg.t * int
  | Lea of Reg.t * int
  | AddSp of int
  | Jmp of int
  | Jcc of cond * int
  | Call of int
  | IndJmp of Reg.t
  | IndCall of Reg.t
  | IndCallMem of base * int
  | Ret
  | CallRt of int
  | Throw
  | Out of Reg.t
  | Mflr of Reg.t
  | Mtlr of Reg.t
  | Mttar of Reg.t
  | Btar
  | Adrp of Reg.t * int
  | Addis of Reg.t * Reg.t * int

let pp_cond ppf c =
  Format.pp_print_string ppf
    (match c with
    | Eq -> "eq"
    | Ne -> "ne"
    | Lt -> "lt"
    | Le -> "le"
    | Gt -> "gt"
    | Ge -> "ge")

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm n -> Format.fprintf ppf "$%d" n

let pp_base ppf = function
  | BReg r -> Reg.pp ppf r
  | BSp -> Format.pp_print_string ppf "sp"

let pp_width ppf w = Format.fprintf ppf "%d" (width_bytes w)

let pp ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Halt -> Format.pp_print_string ppf "halt"
  | Trap -> Format.pp_print_string ppf "trap"
  | Illegal -> Format.pp_print_string ppf "(illegal)"
  | Mov (r, o) -> Format.fprintf ppf "mov %a, %a" Reg.pp r pp_operand o
  | Movhi (r, n) -> Format.fprintf ppf "movhi %a, %d" Reg.pp r n
  | Orlo (r, n) -> Format.fprintf ppf "orlo %a, %d" Reg.pp r n
  | Movabs (r, n) -> Format.fprintf ppf "movabs %a, %d" Reg.pp r n
  | Add (r, o) -> Format.fprintf ppf "add %a, %a" Reg.pp r pp_operand o
  | Sub (r, o) -> Format.fprintf ppf "sub %a, %a" Reg.pp r pp_operand o
  | Mul (r, o) -> Format.fprintf ppf "mul %a, %a" Reg.pp r pp_operand o
  | And_ (r, o) -> Format.fprintf ppf "and %a, %a" Reg.pp r pp_operand o
  | Or_ (r, o) -> Format.fprintf ppf "or %a, %a" Reg.pp r pp_operand o
  | Xor (r, o) -> Format.fprintf ppf "xor %a, %a" Reg.pp r pp_operand o
  | Shl (r, n) -> Format.fprintf ppf "shl %a, %d" Reg.pp r n
  | Shr (r, n) -> Format.fprintf ppf "shr %a, %d" Reg.pp r n
  | Cmp (r, o) -> Format.fprintf ppf "cmp %a, %a" Reg.pp r pp_operand o
  | Load (w, rd, b, d) ->
      Format.fprintf ppf "ld%a %a, [%a%+d]" pp_width w Reg.pp rd pp_base b d
  | Store (w, b, d, rs) ->
      Format.fprintf ppf "st%a [%a%+d], %a" pp_width w pp_base b d Reg.pp rs
  | LoadIdx (w, rd, rb, ri, s) ->
      Format.fprintf ppf "ldx%a %a, [%a+%a*%d]" pp_width w Reg.pp rd Reg.pp rb
        Reg.pp ri s
  | Lea (r, d) -> Format.fprintf ppf "lea %a, [pc%+d]" Reg.pp r d
  | AddSp n -> Format.fprintf ppf "addsp %d" n
  | Jmp d -> Format.fprintf ppf "jmp pc%+d" d
  | Jcc (c, d) -> Format.fprintf ppf "j%a pc%+d" pp_cond c d
  | Call d -> Format.fprintf ppf "call pc%+d" d
  | IndJmp r -> Format.fprintf ppf "jmp *%a" Reg.pp r
  | IndCall r -> Format.fprintf ppf "call *%a" Reg.pp r
  | IndCallMem (b, d) -> Format.fprintf ppf "call *[%a%+d]" pp_base b d
  | Ret -> Format.pp_print_string ppf "ret"
  | CallRt n -> Format.fprintf ppf "callrt #%d" n
  | Throw -> Format.pp_print_string ppf "throw"
  | Out r -> Format.fprintf ppf "out %a" Reg.pp r
  | Mflr r -> Format.fprintf ppf "mflr %a" Reg.pp r
  | Mtlr r -> Format.fprintf ppf "mtlr %a" Reg.pp r
  | Mttar r -> Format.fprintf ppf "mttar %a" Reg.pp r
  | Btar -> Format.pp_print_string ppf "btar"
  | Adrp (r, d) -> Format.fprintf ppf "adrp %a, pc%+d" Reg.pp r d
  | Addis (rd, rs, n) ->
      Format.fprintf ppf "addis %a, %a, %d" Reg.pp rd Reg.pp rs n

let to_string i = Format.asprintf "%a" pp i
let equal (a : t) b = a = b

let is_branch = function Jmp _ | Jcc _ -> true | _ -> false
let is_call = function Call _ | IndCall _ | IndCallMem _ | CallRt _ -> true | _ -> false
let is_indirect = function IndJmp _ | IndCall _ | IndCallMem _ | Btar -> true | _ -> false

let is_terminator = function
  | Jmp _ | Jcc _ | Call _ | IndJmp _ | IndCall _ | IndCallMem _ | Ret
  | CallRt _ | Halt | Throw | Trap | Illegal | Btar ->
      true
  | Nop | Mov _ | Movhi _ | Orlo _ | Movabs _ | Add _ | Sub _ | Mul _ | And_ _
  | Or_ _ | Xor _ | Shl _ | Shr _ | Cmp _ | Load _ | Store _ | LoadIdx _
  | Lea _ | AddSp _ | Out _ | Mflr _ | Mtlr _ | Mttar _ | Adrp _ | Addis _ ->
      false

let has_fallthrough = function
  | Jmp _ | IndJmp _ | Ret | Halt | Throw | Illegal | Btar -> false
  | Trap -> false
  | Jcc _ | Call _ | IndCall _ | IndCallMem _ | CallRt _ -> true
  | i -> not (is_terminator i)

let direct_target ~addr = function
  | Jmp d | Jcc (_, d) | Call d -> Some (addr + d)
  | _ -> None

let with_direct_target ~addr i target =
  match i with
  | Jmp _ -> Jmp (target - addr)
  | Jcc (c, _) -> Jcc (c, target - addr)
  | Call _ -> Call (target - addr)
  | _ -> invalid_arg "Insn.with_direct_target: not a direct branch/call"

let set_of_list = List.fold_left (fun s r -> Reg.Set.add r s) Reg.Set.empty

let operand_uses = function Reg r -> [ r ] | Imm _ -> []
let base_uses = function BReg r -> [ r ] | BSp -> []

let defs = function
  | Mov (r, _) | Movhi (r, _) | Movabs (r, _) | Load (_, r, _, _)
  | LoadIdx (_, r, _, _, _) | Lea (r, _) | Mflr r | Adrp (r, _)
  | Addis (r, _, _) ->
      set_of_list [ r ]
  | Orlo (r, _) | Add (r, _) | Sub (r, _) | Mul (r, _) | And_ (r, _)
  | Or_ (r, _) | Xor (r, _) | Shl (r, _) | Shr (r, _) ->
      set_of_list [ r ]
  | Call _ | IndCall _ | IndCallMem _ | CallRt _ ->
      (* calls may clobber every caller-saved register; callers of [defs]
         that care about calls should consult the calling convention, but
         for liveness it is safe to treat the return register as defined *)
      set_of_list [ Reg.ret ]
  | Nop | Halt | Trap | Illegal | Cmp _ | Store _ | AddSp _ | Jmp _ | Jcc _
  | IndJmp _ | Ret | Throw | Out _ | Mtlr _ | Mttar _ | Btar ->
      Reg.Set.empty

let uses = function
  | Mov (_, o) -> set_of_list (operand_uses o)
  | Movhi _ | Movabs _ -> Reg.Set.empty
  | Orlo (r, _) | Shl (r, _) | Shr (r, _) -> set_of_list [ r ]
  | Add (r, o) | Sub (r, o) | Mul (r, o) | And_ (r, o) | Or_ (r, o)
  | Xor (r, o) ->
      set_of_list (r :: operand_uses o)
  | Cmp (r, o) -> set_of_list (r :: operand_uses o)
  | Load (_, _, b, _) -> set_of_list (base_uses b)
  | LoadIdx (_, _, rb, ri, _) -> set_of_list [ rb; ri ]
  | Store (_, b, _, rs) -> set_of_list (rs :: base_uses b)
  | Lea _ | AddSp _ | Jmp _ | Jcc _ | Call _ | CallRt _ -> Reg.Set.empty
  | IndJmp r | IndCall r -> set_of_list [ r ]
  | IndCallMem (b, _) -> set_of_list (base_uses b)
  | Ret | Halt | Trap | Illegal | Nop | Btar -> Reg.Set.empty
  | Throw -> set_of_list [ Reg.r0 ]
  | Out r | Mtlr r | Mttar r -> set_of_list [ r ]
  | Mflr _ -> Reg.Set.empty
  | Adrp _ -> Reg.Set.empty
  | Addis (_, rs, _) -> set_of_list [ rs ]
