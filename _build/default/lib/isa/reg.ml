type t = int

let count = 16

let make i =
  if i < 0 || i >= count then
    invalid_arg (Printf.sprintf "Reg.make: %d out of range" i);
  i

let index r = r
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let to_string r = Printf.sprintf "r%d" r
let pp ppf r = Format.pp_print_string ppf (to_string r)
let all = List.init count (fun i -> i)
let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
let r6 = 6
let r7 = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let r14 = 14
let r15 = 15
let toc = r2
(* r2 is never an argument register: it is the ppc64le TOC base, and the
   calling convention is shared across the flavours. *)
let arg_regs = [ r0; r1; r3; r4 ]
let ret = r0
let callee_saved = [ r6; r7; r8; r9; r10; r11 ]

let caller_saved arch =
  let base = [ r0; r1; r3; r4; r5; r12; r13; r14; r15 ] in
  (* r2 is the TOC register on ppc64le and must never be clobbered. *)
  match arch with Arch.Ppc64le -> base | Arch.X86_64 | Arch.Aarch64 -> r2 :: base

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
