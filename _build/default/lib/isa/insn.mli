(** The synthetic instruction set.

    One architecture-neutral instruction type is shared by the code
    generator, the disassembler, the rewriter and the VM; per-architecture
    differences (lengths, displacement ranges, which constructors are
    encodable) live in {!Encode}. Displacements of PC-relative instructions
    are always relative to the {e address of the instruction itself}:
    [target = addr + disp]. *)

type width = W8 | W16 | W32 | W64

val width_bytes : width -> int
val width_of_bytes : int -> width

type cond = Eq | Ne | Lt | Le | Gt | Ge

val negate_cond : cond -> cond

type operand = Reg of Reg.t | Imm of int

(** Memory base: a general-purpose register or the stack pointer. *)
type base = BReg of Reg.t | BSp

type t =
  | Nop
  | Halt  (** terminate the program normally *)
  | Trap
      (** trap-based trampoline: the VM delivers a signal to the runtime
          library, which consults its trap map (expensive; section 7) *)
  | Illegal  (** undecodable byte(s); executing one aborts the run *)
  | Mov of Reg.t * operand
  | Movhi of Reg.t * int  (** [rd <- imm lsl 16]; pairs with {!Orlo} *)
  | Orlo of Reg.t * int  (** [rd <- rd lor (imm land 0xffff)] *)
  | Movabs of Reg.t * int
      (** x86-64 only: load a full-width absolute immediate (10 bytes); the
          position-dependent function-pointer materialization *)
  | Add of Reg.t * operand
  | Sub of Reg.t * operand
  | Mul of Reg.t * operand
  | And_ of Reg.t * operand
  | Or_ of Reg.t * operand
  | Xor of Reg.t * operand
  | Shl of Reg.t * int
  | Shr of Reg.t * int
  | Cmp of Reg.t * operand  (** sets the VM condition flags *)
  | Load of width * Reg.t * base * int  (** [rd <- mem(base + disp)] *)
  | Store of width * base * int * Reg.t  (** [mem(base + disp) <- rs] *)
  | LoadIdx of width * Reg.t * Reg.t * Reg.t * int
      (** [LoadIdx (w, rd, rb, ri, scale)]: [rd <- mem(rb + ri*scale)];
          the jump-table read instruction *)
  | Lea of Reg.t * int  (** [rd <- addr + disp] (PC-relative address) *)
  | AddSp of int  (** [sp <- sp + imm] (frame allocation) *)
  | Jmp of int  (** unconditional PC-relative branch *)
  | Jcc of cond * int  (** conditional PC-relative branch *)
  | Call of int
      (** direct call; pushes the return address (x86-64) or sets the link
          register (ppc64le, aarch64) *)
  | IndJmp of Reg.t  (** indirect jump: jump tables and indirect tail calls *)
  | IndCall of Reg.t
  | IndCallMem of base * int  (** call through a memory slot *)
  | Ret
  | CallRt of int
      (** PLT-like call to runtime-library routine [n] (a dynamic symbol);
          used for external instrumentation libraries *)
  | Throw  (** raise: value in [r0]; triggers stack unwinding *)
  | Out of Reg.t  (** append [rs] to the observable program output *)
  | Mflr of Reg.t  (** [rd <- lr] (ppc64le, aarch64) *)
  | Mtlr of Reg.t  (** [lr <- rs] *)
  | Mttar of Reg.t  (** [tar <- rs] (ppc64le special branch-target register) *)
  | Btar  (** branch to [tar] (ppc64le long trampoline, Table 2) *)
  | Adrp of Reg.t * int
      (** [rd <- (addr land (lnot 4095)) + disp]; [disp] is a multiple of
          4096 (aarch64 long trampoline, Table 2) *)
  | Addis of Reg.t * Reg.t * int
      (** [rd <- rs + (imm lsl 16)] (ppc64le TOC-relative addressing) *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

(** {1 Classification} *)

val is_terminator : t -> bool
(** Ends a basic block: branches, calls, returns, [Halt], [Throw], [Trap],
    [Illegal], [Btar]. (Calls end blocks because the fall-through block may
    be a control-flow landing block.) *)

val is_branch : t -> bool
(** Unconditional or conditional direct branch. *)

val is_call : t -> bool
(** Direct, indirect, memory-indirect or runtime-library call. *)

val is_indirect : t -> bool
(** [IndJmp], [IndCall], [IndCallMem] or [Btar]. *)

val has_fallthrough : t -> bool
(** Execution can continue at the next instruction ([Jcc], calls, and all
    non-terminators). *)

val direct_target : addr:int -> t -> int option
(** Target of a direct branch or call located at [addr]. *)

val with_direct_target : addr:int -> t -> int -> t
(** [with_direct_target ~addr i target] rewrites the displacement of a direct
    branch/call at [addr] to reach [target]. Raises [Invalid_argument] on
    non-direct-control-flow instructions. *)

(** {1 Dataflow helpers (used by liveness and slicing)} *)

val defs : t -> Reg.Set.t
(** General-purpose registers written by the instruction. *)

val uses : t -> Reg.Set.t
(** General-purpose registers read by the instruction. *)
