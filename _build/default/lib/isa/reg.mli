(** General-purpose and special registers of the synthetic machine.

    All three architecture flavours share 16 general-purpose registers
    [r0]..[r15] plus a stack pointer. ppc64le and aarch64 additionally have a
    link register; ppc64le reserves [r2] as the TOC base and has the [tar]
    special branch-target register used by the long trampoline sequence
    (Table 2 of the paper). *)

type t = private int
(** A general-purpose register index in [0, 15]. *)

val make : int -> t
(** [make i] is register [r<i>]. Raises [Invalid_argument] unless
    [0 <= i < count]. *)

val index : t -> int
val count : int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val all : t list
(** [r0] .. [r15] in order. *)

val r0 : t
val r1 : t
val r2 : t
val r3 : t
val r4 : t
val r5 : t
val r6 : t
val r7 : t
val r8 : t
val r9 : t
val r10 : t
val r11 : t
val r12 : t
val r13 : t
val r14 : t
val r15 : t

val toc : t
(** The ppc64le table-of-contents base register ([r2]). The synthetic ppc64le
    compiler never allocates it for other purposes, mirroring the real ABI. *)

val arg_regs : t list
(** Registers used to pass the first arguments ([r0], [r1], [r3], [r4]; never the ppc64le TOC register [r2]). *)

val ret : t
(** Register holding function return values ([r0]). *)

val callee_saved : t list
(** Registers preserved across calls by the synthetic calling convention. *)

val caller_saved : Arch.t -> t list
(** Registers a call may clobber; candidates for trampoline scratch
    registers found by liveness analysis (section 7 of the paper). *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
