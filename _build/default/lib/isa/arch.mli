(** Synthetic target architectures.

    The reproduction models three architecture flavours that carry the
    properties the paper's techniques depend on: instruction encoding style
    (variable vs. fixed length), branch displacement ranges, the presence of a
    link register, a TOC register on ppc64le, and per-architecture jump-table
    conventions. See DESIGN.md section 2 for the substitution rationale. *)

type t = X86_64 | Ppc64le | Aarch64

val all : t list
(** All supported architectures, in the paper's presentation order. *)

val name : t -> string
(** Lower-case display name, e.g. ["x86-64"]. *)

val of_string : string -> t option
(** Parse a display name (also accepts ["x86_64"], ["ppc64le"], ["aarch64"]). *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val is_fixed_length : t -> bool
(** [true] for ppc64le and aarch64 (every instruction is 4 bytes). *)

val insn_alignment : t -> int
(** Required instruction alignment in bytes: 1 on x86-64, 4 elsewhere. *)

val min_insn_size : t -> int
(** Smallest encodable instruction, in bytes. *)

val short_branch_range : t -> int
(** Branching range (+/- bytes) of the shortest unconditional branch:
    128 B (x86-64 2-byte branch), 32 MiB (ppc64le [b]),
    128 MiB (aarch64 [b]). Table 2 of the paper. *)

val long_branch_range : t -> int
(** Branching range of the long trampoline sequence: 2 GiB on x86-64
    (5-byte branch) and ppc64le (TOC-relative addis/addi/mtspr/bctar),
    4 GiB on aarch64 (adrp/add/br). Table 2 of the paper. *)

val has_link_register : t -> bool
(** Calls store the return address in a link register rather than pushing it
    on the stack (ppc64le and aarch64). *)

val pointer_size : t -> int
(** Bytes per code pointer (8 on all three flavours). *)

val cond_branch_range : t -> int
(** Branching range of conditional branches. *)

val max_padding : t -> int
(** Maximum inter-function alignment padding the synthetic compilers emit:
    x86-64 pads up to 16 bytes with [Nop]s; ppc64le and aarch64 pad at most
    three instructions (12 bytes), per section 7 of the paper. *)

val jump_tables_in_code : t -> bool
(** Whether the synthetic compiler embeds jump tables in the code section
    (ppc64le convention, per Assumption 1 in section 5.1). *)

val narrow_jump_table_entries : t -> bool
(** Whether the compiler may emit 1- or 2-byte jump-table entries
    (aarch64 convention, per section 5.1). *)
