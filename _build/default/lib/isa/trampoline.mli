(** Trampoline instruction sequences (Table 2 of the paper).

    A trampoline transfers control from a patched location in the original
    [.text] to the relocated code in [.instr]. Each architecture has a short
    form (limited range) and a long form (multiple instructions, wide range);
    the long forms on ppc64le and aarch64 need a scratch register found by
    liveness analysis. When nothing fits, the rewriter falls back to a
    one-instruction trap trampoline, which the runtime library resolves
    through its trap map at a high signal-delivery cost. *)

type kind =
  | Short  (** single direct branch: 2 B / ±128 B (x86-64), 4 B / ±32 MiB (ppc64le), 4 B / ±128 MiB (aarch64) *)
  | Long of Reg.t option
      (** x86-64: 5-byte branch, no register ([None]);
          ppc64le: [addis reg, r2, hi; addi reg, lo; mtspr tar, reg; bctar]
          (±2 GiB around the TOC base);
          aarch64: [adrp reg; add reg, lo12; br reg] (±4 GiB) *)
  | Long_save_restore of Reg.t
      (** ppc64le only: no dead register available, so save [reg] below the
          stack pointer and restore it after loading [tar] (6 instructions) *)
  | Trap_tramp  (** trap instruction; resolved by the runtime library *)

val pp_kind : Format.formatter -> kind -> unit

val len : Arch.t -> kind -> int
(** Encoded length in bytes of a trampoline of this kind. *)

val trap_len : Arch.t -> int
(** Length of the trap trampoline (1 byte on x86-64, 4 elsewhere). *)

val short_reaches : Arch.t -> at:int -> target:int -> bool
val long_reaches : Arch.t -> at:int -> target:int -> toc:int -> bool

val emit : Arch.t -> at:int -> target:int -> toc:int -> kind -> string
(** Encode the trampoline bytes for installation at address [at], branching
    to [target]. [toc] is the ppc64le TOC base (ignored elsewhere). Raises
    {!Encode.Not_encodable} if the kind cannot reach the target. *)

val select :
  Arch.t ->
  at:int ->
  space:int ->
  target:int ->
  dead:Reg.Set.t ->
  toc:int ->
  kind option
(** Choose the cheapest non-trap trampoline that fits in [space] bytes at
    [at] and reaches [target], given the registers [dead] at the patch point.
    Returns [None] when only a trap (or a multi-trampoline hop arranged by
    the caller) remains. *)

type row = {
  arch : Arch.t;
  instructions : string;  (** human-readable sequence, as in Table 2 *)
  range : int;  (** ± branching range in bytes *)
  length_desc : string;  (** e.g. "2B" or "4I" *)
}

val catalogue : row list
(** The rows of Table 2, for the reproduction harness. *)
