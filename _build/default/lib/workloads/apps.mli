(** Real-world application analogues (sections 8.2 and 9).

    Scaled-down synthetic stand-ins that carry exactly the properties the
    paper's experiments exercise:

    - {b libxul}: a large C++/Rust mixed library — many functions, jump
      tables, virtual-dispatch-style function-pointer tables, C++
      exceptions, Rust metadata and symbol versioning (both of which defeat
      the IR-lowering baseline);
    - {b docker}: a Go PIE binary — no jump tables, Go runtime traceback
      over a [.gopclntab], the [&goexit+1] pointer idiom, and interface
      tables that make func-ptr mode unsafe;
    - {b libcuda}: a stripped driver-like library with deep chains of small
      hot functions, of which only a subset is instrumented (the Diogenes
      partial-instrumentation case study). *)

val libxul :
  Icfg_isa.Arch.t -> Icfg_obj.Binary.t * Icfg_codegen.Debug.t
(** Compiled as PIE with [n_funcs] scaled for simulation. *)

val docker :
  Icfg_isa.Arch.t -> Icfg_obj.Binary.t * Icfg_codegen.Debug.t

val libcuda :
  ?iters:int -> Icfg_isa.Arch.t -> Icfg_obj.Binary.t * Icfg_codegen.Debug.t

val libcuda_api_subset : Icfg_obj.Binary.t -> string list
(** The functions Diogenes instruments (the "700 of 12644" analogue). *)
