(** Deterministic splitmix64 PRNG.

    Workload generation must be reproducible across runs and independent of
    OCaml's global [Random] state, so every generator threads one of these. *)

type t

val create : int -> t
(** Seeded generator. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises on non-positive bound. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [lo, hi] (inclusive). *)

val bool : t -> bool
val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
val shuffle : t -> 'a list -> 'a list
