(** The SPEC CPU 2017-like benchmark suite.

    Nineteen seeded synthetic benchmarks mirroring the composition the paper
    evaluates (section 8.1): 627.cam4 is excluded as in the paper, 8 of the
    19 are Fortran-flavoured (loop-heavy, no exceptions, few indirect calls),
    two are the C++-with-exceptions analogues of 620.omnetpp and
    623.xalancbmk, and the rest are C/C++ workloads with jump tables and
    function-pointer dispatch. A few benchmarks carry "hard" constructs
    (spilled table bases, frame-less indirect tail calls) that separate the
    paper's analysis from the SRBI-era baseline; on ppc64le and aarch64 some
    benchmarks additionally contain genuinely unresolvable dispatch, giving
    the per-architecture coverage differences of Table 3. *)

type bench = {
  bench_name : string;
  langs : Icfg_obj.Binary.lang list;
  has_exceptions : bool;
  prog : Icfg_codegen.Ir.program;
  bulk_data : int;  (** extra zeroed working-set bytes (stresses ppc64le
                        branch ranges for a few benchmarks) *)
}

val benchmarks : Icfg_isa.Arch.t -> bench list
(** The 19 benchmarks for one architecture (deterministic). *)

val compile :
  ?pie:bool -> Icfg_isa.Arch.t -> bench ->
  Icfg_obj.Binary.t * Icfg_codegen.Debug.t
