open Icfg_obj
module Ir = Icfg_codegen.Ir
module Compile = Icfg_codegen.Compile

(* ------------------------------------------------------------------ *)
(* Firefox's libxul.so analogue                                        *)
(* ------------------------------------------------------------------ *)

let libxul arch =
  let spec =
    {
      Gen.seed = 80;
      name = "libxul";
      langs = [ Binary.Cpp; Binary.Rust ];
      exceptions = true;
      n_compute = 26;
      n_switch = 7;
      n_dispatch = 6;
      n_hard_spill = 2;
      n_frameless_tail = 2;
      n_data_table = (if arch = Icfg_isa.Arch.X86_64 then 1 else 2);
      iters = 120;
      inner = 2;
      work = 8;
      cases = 16;
    }
  in
  let prog = Gen.build spec in
  let prog =
    {
      prog with
      Ir.features =
        {
          prog.Ir.features with
          Binary.rust_metadata = true;
          symbol_versioning = true;
        };
    }
  in
  Compile.compile ~pie:true arch prog

(* ------------------------------------------------------------------ *)
(* Docker analogue (Go)                                                *)
(* ------------------------------------------------------------------ *)

let docker arch =
  let adjust = if arch = Icfg_isa.Arch.X86_64 then 1 else 4 in
  let spec = Gen.go_spec ~seed:1903 ~name:"docker" ~iters:150 in
  let prog = Gen.build_go ~vtab_check:true ~goexit_adjust:adjust spec in
  Compile.compile ~pie:true arch prog

(* ------------------------------------------------------------------ *)
(* libcuda.so analogue (the Diogenes case study)                       *)
(* ------------------------------------------------------------------ *)

(* Deep chains of small functions: each public cu* entry point fans into a
   chain of tiny helpers ending in a shared internal "synchronization"
   function — the hidden function Diogenes hunts for. *)
let n_apis = 16
let chain_depth = 3
let n_stubs = 16

let libcuda_prog ~iters =
  let masked e = Ir.Bin (Band, e, Int 0xFFFFF) in
  let sync_fn =
    Ir.func "internal_sync" [ "x" ]
      [
        Ir.Let ("a", masked (Bin (Bmul, Var "x", Int 3)));
        Ir.Return (masked (Bin (Badd, Var "a", Int 1)));
      ]
  in
  let helper api depth =
    let name = Printf.sprintf "helper_%d_%d" api depth in
    let next =
      if depth + 1 >= chain_depth then "internal_sync"
      else Printf.sprintf "helper_%d_%d" api (depth + 1)
    in
    (* Small functions with conditional early-outs and empty-then branches:
       the latter compile to branch-only basic blocks (one instruction), the
       tiny hot blocks that force every-block placement into trap
       trampolines when the relocated area is out of short-branch range. *)
    Ir.func name [ "x" ]
      [
        Ir.If (Icfg_isa.Insn.Eq, Bin (Band, Var "x", Int 1), Int 0, [], []);
        Ir.If (Icfg_isa.Insn.Eq, Bin (Band, Var "x", Int 2), Int 0, [], []);
        Ir.If (Icfg_isa.Insn.Eq, Bin (Band, Var "x", Int 4), Int 0, [], []);
        Ir.If
          ( Icfg_isa.Insn.Eq,
            Bin (Band, Var "x", Int 15),
            Int 0,
            [ Ir.Return (masked (Bin (Badd, Var "x", Int depth))) ],
            [] );
        Ir.Call (Some "r", Direct next, [ masked (Bin (Badd, Var "x", Int 1)) ]);
        Ir.Return (Var "r");
      ]
  in
  let api i =
    Ir.func (Printf.sprintf "cuApi%d" i) [ "x" ]
      [
        (* Result-ignored back-to-back calls: the fall-through blocks are
           three instructions — too small for the ppc64le long trampoline
           when every block needs one. *)
        Ir.Call (None, Direct (Printf.sprintf "helper_%d_0" i), [ Var "x" ]);
        Ir.Call (None, Direct (Printf.sprintf "helper_%d_0" i), [ Var "x" ]);
        Ir.Call (None, Direct (Printf.sprintf "helper_%d_0" i), [ Var "x" ]);
        Ir.Call (None, Direct (Printf.sprintf "helper_%d_0" i), [ Var "x" ]);
        Ir.Call (Some "r", Direct (Printf.sprintf "helper_%d_0" i), [ Var "x" ]);
        Ir.Return (Var "r");
      ]
  in
  let apis = List.init n_apis api in
  (* Public entry stubs: one-instruction tail-call trampolines into the
     implementation, the hallmark of stripped driver interfaces. Their
     entire body is a single branch, so an every-block rewriter without
     trampoline superblocks can only patch them with a trap once the
     relocated area is out of short-branch range; our placement analysis
     extends the entry over the inter-function alignment padding. *)
  let stub i =
    Ir.func
      (Printf.sprintf "cuStub%d" i)
      []
      [ Ir.Tail_call (Direct (Printf.sprintf "cuApi%d" (i mod n_apis))) ]
  in
  let stubs = List.init n_stubs stub in
  let helpers =
    List.concat (List.init n_apis (fun i -> List.init chain_depth (helper i)))
  in
  let driver =
    Ir.func "driver" [ "x" ]
      [
        Ir.Let ("acc", Var "x");
        Ir.For
          ( "r",
            0,
            2,
            List.concat
              (List.init n_stubs (fun i ->
                   let v = Printf.sprintf "v%d" i in
                   [
                     Ir.Call
                       ( Some v,
                         Direct (Printf.sprintf "cuStub%d" i),
                         [ masked (Bin (Badd, Var "acc", Int i)) ] );
                     Ir.Set (Lvar "acc", masked (Bin (Badd, Var "acc", Var v)));
                   ])) );
        Ir.Return (Var "acc");
      ]
  in
  let main =
    Ir.func "main" []
      [
        Ir.Let ("acc", Int 5);
        Ir.For
          ( "i",
            0,
            iters,
            [
              Ir.Call (Some "d", Direct "driver", [ masked (Bin (Badd, Var "acc", Var "i")) ]);
              Ir.Set (Lvar "acc", masked (Bin (Badd, Var "acc", Var "d")));
            ] );
        Ir.Print (Var "acc");
        Ir.Return (Int 0);
      ]
  in
  Ir.program ~name:"libcuda"
    ~features:{ Binary.no_features with Binary.langs = [ Binary.Cpp ]; symbol_versioning = true }
    ~main:"main"
    ((sync_fn :: helpers) @ apis @ stubs @ [ driver; main ])

let libcuda ?(iters = 220) arch = Compile.compile ~pie:true arch (libcuda_prog ~iters)

let libcuda_api_subset _bin =
  (* Diogenes instruments the public synchronization-related interfaces and
     their callees-of-interest: a strict subset of all functions. *)
  "internal_sync"
  :: List.init n_stubs (fun i -> Printf.sprintf "cuStub%d" i)
  @ List.init n_apis (fun i -> Printf.sprintf "cuApi%d" i)
  @ List.init n_apis (fun i -> Printf.sprintf "helper_%d_0" i)
