open Icfg_obj
module Ir = Icfg_codegen.Ir

type bench = {
  bench_name : string;
  langs : Binary.lang list;
  has_exceptions : bool;
  prog : Ir.program;
  bulk_data : int;
}

(* name, langs, exceptions, relative weight of switch/dispatch work *)
type shape = {
  sh_name : string;
  sh_langs : Binary.lang list;
  sh_exc : bool;
  sh_switch : int;
  sh_dispatch : int;
  sh_work : int;  (** arithmetic loop length: higher = less relative
                      control-flow overhead *)
  sh_hard_spill : int;
  sh_frameless : int;
  sh_iters : int;
}

let c = [ Binary.C ]
let cpp = [ Binary.Cpp ]
let f = [ Binary.Fortran ]
let cf = [ Binary.C; Binary.Fortran ]

(* The 19 SPEC CPU 2017 benchmarks the paper runs (627.cam4 excluded). *)
let shapes =
  [
    { sh_name = "600.perlbench_s"; sh_langs = c; sh_exc = false; sh_switch = 3; sh_dispatch = 2; sh_work = 28; sh_hard_spill = 1; sh_frameless = 1; sh_iters = 110 };
    { sh_name = "602.gcc_s"; sh_langs = c; sh_exc = false; sh_switch = 4; sh_dispatch = 2; sh_work = 24; sh_hard_spill = 2; sh_frameless = 1; sh_iters = 100 };
    { sh_name = "603.bwaves_s"; sh_langs = f; sh_exc = false; sh_switch = 0; sh_dispatch = 0; sh_work = 202; sh_hard_spill = 0; sh_frameless = 0; sh_iters = 120 };
    { sh_name = "605.mcf_s"; sh_langs = c; sh_exc = false; sh_switch = 1; sh_dispatch = 1; sh_work = 66; sh_hard_spill = 0; sh_frameless = 0; sh_iters = 130 };
    { sh_name = "607.cactuBSSN_s"; sh_langs = cf; sh_exc = false; sh_switch = 1; sh_dispatch = 0; sh_work = 162; sh_hard_spill = 0; sh_frameless = 0; sh_iters = 110 };
    { sh_name = "619.lbm_s"; sh_langs = c; sh_exc = false; sh_switch = 0; sh_dispatch = 0; sh_work = 222; sh_hard_spill = 0; sh_frameless = 0; sh_iters = 130 };
    { sh_name = "620.omnetpp_s"; sh_langs = cpp; sh_exc = true; sh_switch = 2; sh_dispatch = 3; sh_work = 33; sh_hard_spill = 0; sh_frameless = 0; sh_iters = 90 };
    { sh_name = "621.wrf_s"; sh_langs = f; sh_exc = false; sh_switch = 1; sh_dispatch = 0; sh_work = 145; sh_hard_spill = 0; sh_frameless = 0; sh_iters = 110 };
    { sh_name = "623.xalancbmk_s"; sh_langs = cpp; sh_exc = true; sh_switch = 3; sh_dispatch = 3; sh_work = 24; sh_hard_spill = 1; sh_frameless = 0; sh_iters = 90 };
    { sh_name = "625.x264_s"; sh_langs = c; sh_exc = false; sh_switch = 2; sh_dispatch = 1; sh_work = 57; sh_hard_spill = 0; sh_frameless = 1; sh_iters = 120 };
    { sh_name = "628.pop2_s"; sh_langs = cf; sh_exc = false; sh_switch = 1; sh_dispatch = 0; sh_work = 134; sh_hard_spill = 0; sh_frameless = 0; sh_iters = 100 };
    { sh_name = "631.deepsjeng_s"; sh_langs = cpp; sh_exc = false; sh_switch = 2; sh_dispatch = 1; sh_work = 48; sh_hard_spill = 0; sh_frameless = 0; sh_iters = 120 };
    { sh_name = "638.imagick_s"; sh_langs = c; sh_exc = false; sh_switch = 1; sh_dispatch = 1; sh_work = 114; sh_hard_spill = 0; sh_frameless = 0; sh_iters = 110 };
    { sh_name = "641.leela_s"; sh_langs = cpp; sh_exc = false; sh_switch = 1; sh_dispatch = 2; sh_work = 57; sh_hard_spill = 0; sh_frameless = 0; sh_iters = 110 };
    { sh_name = "644.nab_s"; sh_langs = c; sh_exc = false; sh_switch = 1; sh_dispatch = 0; sh_work = 125; sh_hard_spill = 0; sh_frameless = 0; sh_iters = 110 };
    { sh_name = "648.exchange2_s"; sh_langs = f; sh_exc = false; sh_switch = 2; sh_dispatch = 0; sh_work = 85; sh_hard_spill = 0; sh_frameless = 0; sh_iters = 110 };
    { sh_name = "649.fotonik3d_s"; sh_langs = f; sh_exc = false; sh_switch = 0; sh_dispatch = 0; sh_work = 193; sh_hard_spill = 0; sh_frameless = 0; sh_iters = 110 };
    { sh_name = "654.roms_s"; sh_langs = f; sh_exc = false; sh_switch = 1; sh_dispatch = 0; sh_work = 154; sh_hard_spill = 0; sh_frameless = 0; sh_iters = 110 };
    { sh_name = "657.xz_s"; sh_langs = c; sh_exc = false; sh_switch = 2; sh_dispatch = 1; sh_work = 52; sh_hard_spill = 1; sh_frameless = 0; sh_iters = 120 };
  ]

(* Architecture-specific hardness: the ppc64le and aarch64 jump-table
   idioms are harder to analyze in practice; a few benchmarks get a
   genuinely unresolvable (writable-table) dispatcher, reproducing the
   per-architecture coverage ceilings of Table 3. A couple of ppc64le
   benchmarks also get a large working set, pushing .instr beyond the
   32 MiB short-branch range. *)
let arch_hardness (arch : Icfg_isa.Arch.t) name =
  match arch with
  | Icfg_isa.Arch.X86_64 -> (0, 0)
  | Icfg_isa.Arch.Ppc64le -> (
      match name with
      | "602.gcc_s" | "621.wrf_s" -> (1, 40 * 1024 * 1024)
      | "628.pop2_s" -> (1, 0)
      | _ -> (0, 0))
  | Icfg_isa.Arch.Aarch64 -> (
      match name with "602.gcc_s" -> (1, 0) | _ -> (0, 0))

let bench_of_shape arch i sh =
  let n_data_table, bulk = arch_hardness arch sh.sh_name in
  let spec =
    {
      Gen.seed = 1000 + (i * 37);
      name = sh.sh_name;
      langs = sh.sh_langs;
      exceptions = sh.sh_exc;
      n_compute = 5 + (i mod 4);
      n_switch = sh.sh_switch;
      n_dispatch = sh.sh_dispatch;
      n_hard_spill = sh.sh_hard_spill;
      n_frameless_tail = sh.sh_frameless;
      n_data_table;
      iters = sh.sh_iters;
      inner = 3;
      work = sh.sh_work;
      cases = 8;
    }
  in
  {
    bench_name = sh.sh_name;
    langs = sh.sh_langs;
    has_exceptions = sh.sh_exc;
    prog = Gen.build spec;
    bulk_data = bulk;
  }

let benchmarks arch = List.mapi (bench_of_shape arch) shapes

let compile ?pie arch bench =
  Icfg_codegen.Compile.compile ?pie ~bulk_data:bench.bulk_data arch bench.prog
