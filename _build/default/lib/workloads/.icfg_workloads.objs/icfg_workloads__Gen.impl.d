lib/workloads/gen.ml: Array Icfg_codegen Icfg_isa Icfg_obj Ir List Printf Rng String
