lib/workloads/apps.ml: Binary Gen Icfg_codegen Icfg_isa Icfg_obj List Printf
