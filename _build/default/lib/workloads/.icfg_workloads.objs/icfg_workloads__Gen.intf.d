lib/workloads/gen.mli: Icfg_codegen Icfg_obj
