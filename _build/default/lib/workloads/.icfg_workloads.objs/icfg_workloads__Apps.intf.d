lib/workloads/apps.mli: Icfg_codegen Icfg_isa Icfg_obj
