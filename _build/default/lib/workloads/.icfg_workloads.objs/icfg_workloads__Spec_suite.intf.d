lib/workloads/spec_suite.mli: Icfg_codegen Icfg_isa Icfg_obj
