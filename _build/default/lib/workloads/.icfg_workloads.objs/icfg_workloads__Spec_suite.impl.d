lib/workloads/spec_suite.ml: Binary Gen Icfg_codegen Icfg_isa Icfg_obj List
