lib/workloads/rng.mli:
