type t = { mutable state : int }

let create seed = { state = (seed * 0x9E3779B9) lxor 0x5DEECE66D }

let next t =
  (* splitmix64 truncated to OCaml's 63-bit int *)
  t.state <- (t.state + 0x1E3779B97F4A7C15) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  z lxor (z lsr 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  next t mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let bool t = int t 2 = 0
let chance t p = float_of_int (int t 1_000_000) < p *. 1_000_000.

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
