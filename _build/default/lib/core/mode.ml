type t = Dir | Jt | Func_ptr

let all = [ Dir; Jt; Func_ptr ]
let name = function Dir -> "dir" | Jt -> "jt" | Func_ptr -> "func-ptr"

let of_string = function
  | "dir" -> Some Dir
  | "jt" -> Some Jt
  | "func-ptr" | "funcptr" | "func_ptr" -> Some Func_ptr
  | _ -> None

let pp ppf m = Format.pp_print_string ppf (name m)
let rewrites_jump_tables = function Dir -> false | Jt | Func_ptr -> true
let rewrites_func_ptrs = function Dir | Jt -> false | Func_ptr -> true
