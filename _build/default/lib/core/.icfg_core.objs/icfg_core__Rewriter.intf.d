lib/core/rewriter.mli: Format Hashtbl Icfg_analysis Icfg_isa Icfg_obj Icfg_runtime Mode
