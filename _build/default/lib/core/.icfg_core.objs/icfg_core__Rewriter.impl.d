lib/core/rewriter.ml: Arch Array Bytes Char Encode Format Hashtbl Icfg_analysis Icfg_codegen Icfg_isa Icfg_obj Icfg_runtime Insn Int List Mode Option Printf Reg Set String
