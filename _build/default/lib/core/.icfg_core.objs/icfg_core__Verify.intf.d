lib/core/verify.mli: Format Icfg_analysis Icfg_obj Rewriter
