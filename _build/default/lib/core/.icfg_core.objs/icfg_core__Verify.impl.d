lib/core/verify.ml: Format Hashtbl Icfg_analysis Icfg_obj Icfg_runtime List Option Rewriter
