(** The three incremental rewriting modes (section 3 of the paper).

    Each mode rewrites strictly more control flow than the previous one,
    removing classes of control-flow-landing blocks and with them runtime
    bounces between the original and relocated code:

    - [Dir]: direct branches and calls only;
    - [Jt]: also intra-procedural indirect control flow (jump tables are
      cloned, so switch dispatch stays in the relocated code);
    - [Func_ptr]: also inter-procedural indirect control flow (function
      pointer definitions are rewritten to relocated entries). *)

type t = Dir | Jt | Func_ptr

val all : t list
val name : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

val rewrites_jump_tables : t -> bool
val rewrites_func_ptrs : t -> bool
