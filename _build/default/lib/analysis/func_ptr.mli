(** Function-pointer analysis (section 5.2).

    Discovers the {e definitions} of function pointers — the rewriter never
    needs to know where an indirect call goes, only where pointers are
    created:

    - data slots carrying run-time relocations whose value is a function
      entry (PIE);
    - data words in writable data whose value matches a function entry
      (position-dependent code; inherently heuristic — a forged integer that
      happens to equal an entry address will be mis-identified, which is why
      the paper requires precision for safety);
    - address materializations in code ([movabs]/[lea]/[addis+addi]/
      [adrp+add] sequences);
    - values loaded from known pointer slots, adjusted by arithmetic and
      stored elsewhere — forward slicing that captures Go's
      [&runtime.goexit + 1] idiom (Listing 1 of the paper). *)

type site =
  | Fp_slot of { slot : int; target : int; via_reloc : bool }
      (** an 8-byte data word at [slot] holding [target] *)
  | Fp_mater of { prov : int list; target : int }
      (** code materialization; [prov] are the instruction addresses to
          patch *)
  | Fp_adjusted of { src_slot : int; target : int; adjust : int }
      (** the pointer loaded from [src_slot] flows through [+adjust] before
          being stored/used: the rewriter must compensate the slot so the
          adjusted value lands on the relocated block of [target + adjust] *)

val analyze :
  Icfg_obj.Binary.t -> Failure_model.t -> Cfg.t list -> site list

val derived_block_targets : site list -> int list
(** Addresses that unrewritten or adjusted pointers may transfer control to
    (entry-adjusted targets); the rewriter adds them as block leaders and
    control-flow-landing candidates in every mode. *)

val pp_site : Format.formatter -> site -> unit
