open Icfg_isa

type t = { live_in_tbl : (int, Reg.Set.t) Hashtbl.t }

let all_regs = Reg.Set.of_list Reg.all

(* Registers live across a return or an edge we cannot see: the return value
   plus every callee-saved register, conservatively extended by argument
   registers (a tail call consumes them). *)
let exit_live =
  Reg.Set.of_list ((Reg.ret :: Reg.callee_saved) @ Reg.arg_regs @ [ Reg.toc ])

(* Transfer over one instruction, backwards. Calls define caller-saved
   registers (they may clobber them) and use argument registers. *)
let transfer insn live =
  match insn with
  | Insn.Call _ | Insn.IndCall _ | Insn.IndCallMem _ | Insn.CallRt _ ->
      let after_defs =
        Reg.Set.diff live (Reg.Set.of_list (Reg.ret :: Reg.arg_regs))
      in
      let uses = Insn.uses insn in
      Reg.Set.union (Reg.Set.union after_defs uses) (Reg.Set.of_list Reg.arg_regs)
  | _ ->
      let defs = Insn.defs insn and uses = Insn.uses insn in
      Reg.Set.union (Reg.Set.diff live defs) uses

let analyze (cfg : Cfg.t) =
  let live_in_tbl = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace live_in_tbl b.Cfg.b_start Reg.Set.empty) cfg.Cfg.blocks;
  let changed = ref true in
  let iter = ref 0 in
  while !changed && !iter < 100 do
    incr iter;
    changed := false;
    List.iter
      (fun b ->
        let out =
          let succs = Cfg.successors cfg b.Cfg.b_start in
          let term = Cfg.terminator b in
          let leaves_function =
            match term with
            | Some (_, Insn.Ret, _)
            | Some (_, Insn.IndJmp _, _)
            | Some (_, Insn.Throw, _)
            | Some (_, Insn.Halt, _)
            | Some (_, Insn.Btar, _) ->
                true
            | Some (_, Insn.Jmp _, _) when succs = [] -> true (* tail call *)
            | _ -> false
          in
          let from_succs =
            List.fold_left
              (fun acc (dst, _) ->
                Reg.Set.union acc
                  (Option.value ~default:all_regs
                     (Hashtbl.find_opt live_in_tbl dst)))
              Reg.Set.empty succs
          in
          if leaves_function || succs = [] then Reg.Set.union from_succs exit_live
          else from_succs
        in
        let inn =
          List.fold_left
            (fun live (_, insn, _) -> transfer insn live)
            out
            (List.rev b.Cfg.b_insns)
        in
        let old =
          Option.value ~default:Reg.Set.empty
            (Hashtbl.find_opt live_in_tbl b.Cfg.b_start)
        in
        if not (Reg.Set.equal old inn) then (
          Hashtbl.replace live_in_tbl b.Cfg.b_start inn;
          changed := true))
      cfg.Cfg.blocks
  done;
  { live_in_tbl }

let live_in t addr =
  Option.value ~default:all_regs (Hashtbl.find_opt t.live_in_tbl addr)

let dead_in arch t addr =
  let live = live_in t addr in
  Reg.Set.filter
    (fun r -> not (Reg.Set.mem r live))
    (Reg.Set.of_list (Reg.caller_saved arch))
