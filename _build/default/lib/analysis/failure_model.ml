type bound_policy = Bound_guard | Bound_under of int | Bound_over of int

type t = {
  track_spills : bool;
  layout_tail_call_heuristic : bool;
  bound_policy : bound_policy;
  extend_to_known_data : bool;
  reloc_fptrs : bool;
  value_match_fptrs : bool;
  forward_slice_fptrs : bool;
}

let ours =
  {
    track_spills = true;
    layout_tail_call_heuristic = true;
    bound_policy = Bound_guard;
    extend_to_known_data = true;
    reloc_fptrs = true;
    value_match_fptrs = true;
    forward_slice_fptrs = true;
  }

let srbi =
  {
    track_spills = false;
    layout_tail_call_heuristic = false;
    bound_policy = Bound_guard;
    extend_to_known_data = false;
    reloc_fptrs = true;
    value_match_fptrs = true;
    forward_slice_fptrs = false;
  }

let with_bounds t bound_policy = { t with bound_policy }
