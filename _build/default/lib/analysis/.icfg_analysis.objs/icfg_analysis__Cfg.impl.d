lib/analysis/cfg.ml: Format Hashtbl Icfg_isa Icfg_obj Insn List Option Printf String
