lib/analysis/parse.mli: Cfg Failure_model Format Func_ptr Icfg_obj Jump_table Liveness
