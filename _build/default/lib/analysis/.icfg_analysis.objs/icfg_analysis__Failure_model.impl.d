lib/analysis/failure_model.ml:
