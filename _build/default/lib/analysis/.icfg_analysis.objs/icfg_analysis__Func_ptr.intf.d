lib/analysis/func_ptr.mli: Cfg Failure_model Format Icfg_obj
