lib/analysis/liveness.mli: Cfg Icfg_isa
