lib/analysis/listing.ml: Buffer Cfg Failure_model Icfg_isa Icfg_obj Insn Jump_table List Parse Printf String
