lib/analysis/func_ptr.ml: Cfg Failure_model Format Hashtbl Icfg_isa Icfg_obj Insn List Option Printf Reg String
