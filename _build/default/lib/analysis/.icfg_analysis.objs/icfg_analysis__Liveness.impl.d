lib/analysis/liveness.ml: Cfg Hashtbl Icfg_isa Insn List Option Reg
