lib/analysis/cfg.mli: Format Hashtbl Icfg_isa Icfg_obj
