lib/analysis/jump_table.ml: Cfg Failure_model Icfg_isa Icfg_obj Insn List Option Reg
