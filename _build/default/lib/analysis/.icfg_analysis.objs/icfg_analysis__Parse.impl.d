lib/analysis/parse.ml: Cfg Failure_model Format Func_ptr Icfg_isa Icfg_obj Insn Jump_table List Liveness
