lib/analysis/listing.mli: Cfg Failure_model Icfg_obj
