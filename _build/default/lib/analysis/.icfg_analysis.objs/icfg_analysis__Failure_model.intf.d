lib/analysis/failure_model.mli:
