lib/analysis/jump_table.mli: Cfg Failure_model Icfg_isa Icfg_obj
