(** Configuration of analysis strength and injected failures.

    The paper's central methodological claim (section 4.3, Figure 2) is that
    binary-analysis failures have {e graded} impact on rewriting: graceful
    analysis failure only lowers coverage, over-approximation only wastes
    trampoline space, and under-approximation is catastrophic. This module
    makes analysis strength explicit so the baselines (weaker settings) and
    the failure-mode experiments (forced mis-approximations) run through the
    same pipeline as the full system. *)

type bound_policy =
  | Bound_guard  (** read the bound from the range-check guard (precise) *)
  | Bound_under of int
      (** drop this many trailing entries (forced under-approximation) *)
  | Bound_over of int
      (** add this many phantom entries (forced over-approximation); the
          extension stops early at known non-table data when
          [extend_to_known_data] is also set *)

type t = {
  track_spills : bool;
      (** follow values spilled to and reloaded from the stack during
          backward slicing (section 5.1: a major source of real jump-table
          analysis failures when absent) *)
  layout_tail_call_heuristic : bool;
      (** treat unresolved indirect jumps as tail calls when the function
          has no non-nop gaps (the paper's new heuristic); without it, an
          unresolved jump marks the function uninstrumentable *)
  bound_policy : bound_policy;
  extend_to_known_data : bool;
      (** trim table extension at the nearest known data access or next
          table (Assumption 2 handling) *)
  reloc_fptrs : bool;  (** discover function pointers from relocations *)
  value_match_fptrs : bool;
      (** discover function pointers by scanning data words for values that
          equal function entries (needed for position-dependent code; unsafe
          in the presence of forged pointers) *)
  forward_slice_fptrs : bool;
      (** track pointer arithmetic from loads of known pointer slots to
          stores (handles Go's [&runtime.goexit + 1], Listing 1) *)
}

val ours : t
(** The paper's full system. *)

val srbi : t
(** Dyninst-10.2 / SRBI-era analysis: no spill tracking, no layout
    heuristic, no table extension, no forward slicing. *)

val with_bounds : t -> bound_policy -> t
