(** Register liveness over a function CFG.

    Used by trampoline instruction selection (section 7): the ppc64le and
    aarch64 long trampoline sequences need a scratch register that is dead
    at the patch point. The analysis is a standard backward may-live
    fixpoint; anything unknown (indirect control flow leaving the function,
    calls) conservatively treats the calling convention's live set as live. *)

type t

val analyze : Cfg.t -> t

val live_in : t -> int -> Icfg_isa.Reg.Set.t
(** Registers possibly live at a block's start address. Unknown blocks
    report every register live (fully conservative). *)

val dead_in : Icfg_isa.Arch.t -> t -> int -> Icfg_isa.Reg.Set.t
(** Caller-saved registers that are definitely dead at the block start —
    candidates for trampoline scratch registers. *)
