open Icfg_isa
module Binary = Icfg_obj.Binary
module Symbol = Icfg_obj.Symbol

type edge_kind = E_fallthrough | E_branch | E_jump_table of int

type block = {
  b_start : int;
  b_end : int;
  b_insns : (int * Insn.t * int) list;
}

type t = {
  fsym : Symbol.t;
  blocks : block list;
  succs : (int, (int * edge_kind) list) Hashtbl.t;
  preds : (int, int list) Hashtbl.t;
  calls : (int * int option) list;
  ind_jumps : int list;
  tail_targets : int list;
}

let build ?(extra_targets = []) ?(jump_table_edges = []) bin (fsym : Symbol.t) =
  let lo = fsym.addr and hi = fsym.addr + fsym.size in
  let in_range a = a >= lo && a < hi in
  let jt_tbl = Hashtbl.create 4 in
  List.iter (fun (j, ts) -> Hashtbl.replace jt_tbl j ts) jump_table_edges;
  let decoded : (int, Insn.t * int) Hashtbl.t = Hashtbl.create 64 in
  let leaders : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let add_leader a = if in_range a then Hashtbl.replace leaders a () in
  let insn_edges : (int, (int * edge_kind) list) Hashtbl.t = Hashtbl.create 16 in
  let add_edge src dst kind =
    if in_range dst then (
      add_leader dst;
      let existing = Option.value ~default:[] (Hashtbl.find_opt insn_edges src) in
      if not (List.mem (dst, kind) existing) then
        Hashtbl.replace insn_edges src ((dst, kind) :: existing))
  in
  let calls = ref [] in
  let ind_jumps = ref [] in
  let tail_targets = ref [] in
  let rec traverse addr =
    if in_range addr && not (Hashtbl.mem decoded addr) then (
      let insn, len = Binary.decode_at bin addr in
      Hashtbl.replace decoded addr (insn, len);
      let next = addr + len in
      match insn with
      | Jmp d ->
          let target = addr + d in
          if in_range target then (
            add_edge addr target E_branch;
            traverse target)
          else tail_targets := target :: !tail_targets
      | Jcc (_, d) ->
          let target = addr + d in
          (if in_range target then (
             add_edge addr target E_branch;
             traverse target)
           else tail_targets := target :: !tail_targets);
          add_edge addr next E_fallthrough;
          add_leader next;
          traverse next
      | Call d ->
          calls := (addr, Some (addr + d)) :: !calls;
          add_edge addr next E_fallthrough;
          add_leader next;
          traverse next
      | IndCall _ | IndCallMem _ ->
          calls := (addr, None) :: !calls;
          add_edge addr next E_fallthrough;
          add_leader next;
          traverse next
      | CallRt _ ->
          add_edge addr next E_fallthrough;
          add_leader next;
          traverse next
      | IndJmp _ ->
          ind_jumps := addr :: !ind_jumps;
          List.iter
            (fun t ->
              if in_range t then (
                add_edge addr t (E_jump_table addr);
                traverse t))
            (Option.value ~default:[] (Hashtbl.find_opt jt_tbl addr))
      | Ret | Halt | Throw | Trap | Illegal | Btar -> ()
      | _ -> traverse next)
  in
  add_leader lo;
  traverse lo;
  List.iter
    (fun a ->
      if in_range a then (
        add_leader a;
        traverse a))
    extra_targets;
  List.iter
    (fun (j, ts) ->
      if Hashtbl.mem decoded j then
        List.iter
          (fun t ->
            if in_range t then (
              add_leader t;
              add_edge j t (E_jump_table j);
              traverse t))
          ts)
    jump_table_edges;
  (* Landing pads are reached by the unwinder; make them leaders too. *)
  (match Icfg_obj.Ehframe.find bin.Binary.eh_frame lo with
  | Some fde ->
      List.iter
        (fun (_, _, h) ->
          if in_range h then (
            add_leader h;
            traverse h))
        fde.Icfg_obj.Ehframe.landing_pads
  | None -> ());
  (* Form blocks by walking decode chains from each leader. *)
  let leader_list = List.sort compare (Hashtbl.fold (fun k () l -> k :: l) leaders []) in
  let blocks =
    List.filter_map
      (fun start ->
        if not (Hashtbl.mem decoded start) then None
        else
          let rec collect addr acc =
            match Hashtbl.find_opt decoded addr with
            | None -> (List.rev acc, addr)
            | Some (insn, len) ->
                let acc = (addr, insn, len) :: acc in
                let next = addr + len in
                if Insn.is_terminator insn then (List.rev acc, next)
                else if Hashtbl.mem leaders next then (List.rev acc, next)
                else collect next acc
          in
          let insns, b_end = collect start [] in
          Some { b_start = start; b_end; b_insns = insns })
      leader_list
  in
  (* Map instruction-level edges to block-level ones. *)
  let succs = Hashtbl.create 16 and preds = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let out =
        List.concat_map
          (fun (addr, insn, len) ->
            let direct = Option.value ~default:[] (Hashtbl.find_opt insn_edges addr) in
            (* Fall-through off the end of a block into the next leader. *)
            let fall =
              if
                addr + len = b.b_end
                && (not (Insn.is_terminator insn))
                && Hashtbl.mem decoded b.b_end
              then [ (b.b_end, E_fallthrough) ]
              else []
            in
            direct @ fall)
          b.b_insns
      in
      Hashtbl.replace succs b.b_start out;
      List.iter
        (fun (dst, _) ->
          Hashtbl.replace preds dst
            (b.b_start :: Option.value ~default:[] (Hashtbl.find_opt preds dst)))
        out)
    blocks;
  {
    fsym;
    blocks;
    succs;
    preds;
    calls = List.rev !calls;
    ind_jumps = List.rev !ind_jumps;
    tail_targets = List.sort_uniq compare !tail_targets;
  }

let block_at t a = List.find_opt (fun b -> b.b_start = a) t.blocks
let block_containing t a =
  List.find_opt (fun b -> a >= b.b_start && a < b.b_end) t.blocks

let entry_block t =
  match block_at t t.fsym.Symbol.addr with
  | Some b -> b
  | None -> invalid_arg ("Cfg: no entry block for " ^ t.fsym.Symbol.name)

let successors t a = Option.value ~default:[] (Hashtbl.find_opt t.succs a)
let predecessors t a = Option.value ~default:[] (Hashtbl.find_opt t.preds a)

let covered_ranges t =
  let ranges =
    List.concat_map
      (fun b -> List.map (fun (a, _, l) -> (a, a + l)) b.b_insns)
      t.blocks
  in
  let sorted = List.sort compare ranges in
  let rec merge = function
    | (a1, e1) :: (a2, e2) :: rest when a2 <= e1 ->
        merge ((a1, max e1 e2) :: rest)
    | r :: rest -> r :: merge rest
    | [] -> []
  in
  merge sorted

let gaps t =
  let lo = t.fsym.Symbol.addr and hi = t.fsym.Symbol.addr + t.fsym.Symbol.size in
  let covered = covered_ranges t in
  let rec go pos = function
    | [] -> if pos < hi then [ (pos, hi) ] else []
    | (a, e) :: rest ->
        let before = if pos < a then [ (pos, a) ] else [] in
        before @ go (max pos e) rest
  in
  go lo covered

let terminator b =
  match List.rev b.b_insns with
  | ((_, insn, _) as last) :: _ when Insn.is_terminator insn -> Some last
  | _ -> None

let pp ppf t =
  Format.fprintf ppf "CFG %s [0x%x, 0x%x): %d blocks@." t.fsym.Symbol.name
    t.fsym.Symbol.addr
    (t.fsym.Symbol.addr + t.fsym.Symbol.size)
    (List.length t.blocks);
  List.iter
    (fun b ->
      Format.fprintf ppf "  block [0x%x, 0x%x) -> %s@." b.b_start b.b_end
        (String.concat ", "
           (List.map
              (fun (d, _) -> Printf.sprintf "0x%x" d)
              (successors t b.b_start))))
    t.blocks
