open Icfg_isa
module Binary = Icfg_obj.Binary
module Section = Icfg_obj.Section
module Symbol = Icfg_obj.Symbol

let edge_arrow = function
  | Cfg.E_fallthrough -> "fall"
  | Cfg.E_branch -> "branch"
  | Cfg.E_jump_table _ -> "jt"

let function_listing ?(with_blocks = true) bin (cfg : Cfg.t) =
  let b = Buffer.create 1024 in
  let sym = cfg.Cfg.fsym in
  Buffer.add_string b
    (Printf.sprintf "%08x <%s>:  (%d bytes, %d blocks)\n" sym.Symbol.addr
       sym.Symbol.name sym.Symbol.size
       (List.length cfg.Cfg.blocks));
  List.iter
    (fun (blk : Cfg.block) ->
      if with_blocks then begin
        let succs =
          String.concat ", "
            (List.map
               (fun (d, k) -> Printf.sprintf "0x%x (%s)" d (edge_arrow k))
               (Cfg.successors cfg blk.Cfg.b_start))
        in
        Buffer.add_string b
          (Printf.sprintf "  ; block [0x%x, 0x%x) -> %s\n" blk.Cfg.b_start
             blk.Cfg.b_end
             (if succs = "" then "(exit)" else succs))
      end;
      List.iter
        (fun (addr, insn, len) ->
          Buffer.add_string b
            (Printf.sprintf "  %8x:  (%2d)  %s\n" addr len (Insn.to_string insn)))
        blk.Cfg.b_insns)
    cfg.Cfg.blocks;
  (* gaps: nop padding or embedded data *)
  List.iter
    (fun (lo, hi) ->
      Buffer.add_string b
        (Printf.sprintf "  ; gap [0x%x, 0x%x): %d bytes not reached by control flow\n"
           lo hi (hi - lo)))
    (Cfg.gaps cfg);
  ignore bin;
  Buffer.contents b

let binary_listing ?(fm = Failure_model.ours) bin =
  let b = Buffer.create 4096 in
  let parse = Parse.parse ~fm bin in
  List.iter
    (fun fa ->
      Buffer.add_string b (function_listing bin fa.Parse.fa_cfg);
      List.iter
        (fun (t : Jump_table.table) ->
          Buffer.add_string b
            (Printf.sprintf
               "  ; jump table @0x%x: %d x %dB entries, %s, jump @0x%x%s\n"
               t.Jump_table.t_table t.Jump_table.t_count
               (Insn.width_bytes t.Jump_table.t_width)
               (match t.Jump_table.t_base with
               | None -> "absolute"
               | Some base -> Printf.sprintf "base 0x%x" base)
               t.Jump_table.t_jump
               (if t.Jump_table.t_in_code then " (embedded in code)" else "")))
        fa.Parse.fa_tables;
      (match fa.Parse.fa_fail_reason with
      | Some r -> Buffer.add_string b (Printf.sprintf "  ; UNINSTRUMENTABLE: %s\n" r)
      | None -> ());
      Buffer.add_char b '\n')
    parse.Parse.funcs;
  Buffer.contents b

let dot_escape s =
  String.concat "\\n"
    (String.split_on_char '\n' (String.map (fun c -> if c = '"' then '\'' else c) s))

let cfg_to_dot (cfg : Cfg.t) =
  let b = Buffer.create 1024 in
  let name = cfg.Cfg.fsym.Symbol.name in
  Buffer.add_string b (Printf.sprintf "digraph \"%s\" {\n  node [shape=box, fontname=monospace];\n" name);
  List.iter
    (fun (blk : Cfg.block) ->
      let body =
        String.concat "\n"
          (List.map
             (fun (a, i, _) -> Printf.sprintf "%x: %s" a (Insn.to_string i))
             blk.Cfg.b_insns)
      in
      Buffer.add_string b
        (Printf.sprintf "  b%x [label=\"%s\"];\n" blk.Cfg.b_start
           (dot_escape body)))
    cfg.Cfg.blocks;
  List.iter
    (fun (blk : Cfg.block) ->
      List.iter
        (fun (dst, kind) ->
          let style =
            match kind with
            | Cfg.E_fallthrough -> "style=dashed"
            | Cfg.E_branch -> "style=solid"
            | Cfg.E_jump_table _ -> "style=bold, color=blue"
          in
          Buffer.add_string b
            (Printf.sprintf "  b%x -> b%x [%s];\n" blk.Cfg.b_start dst style))
        (Cfg.successors cfg blk.Cfg.b_start))
    cfg.Cfg.blocks;
  Buffer.add_string b "}\n";
  Buffer.contents b

let section_summary (bin : Binary.t) =
  String.concat "\n"
    (List.map
       (fun (s : Section.t) ->
         Printf.sprintf "%-14s 0x%08x..0x%08x %c%c%c %8d bytes" s.Section.name
           s.Section.vaddr (Section.end_vaddr s)
           (if s.Section.perm.Section.read then 'r' else '-')
           (if s.Section.perm.Section.write then 'w' else '-')
           (if s.Section.perm.Section.execute then 'x' else '-')
           (Section.size s))
       bin.Binary.sections)
  ^ "\n"
