(** Disassembly listings and CFG export — the toolbox views a user of the
    library reaches for first (objdump/dot-style output).

    Listings follow control-flow traversal, so embedded jump tables render
    as data, not as bogus instructions. *)

val function_listing :
  ?with_blocks:bool -> Icfg_obj.Binary.t -> Cfg.t -> string
(** An objdump-like listing of one function: addresses, raw byte counts,
    mnemonics, block boundaries and edge annotations. *)

val binary_listing : ?fm:Failure_model.t -> Icfg_obj.Binary.t -> string
(** Listings for every function of the binary, with gaps and in-code jump
    tables marked. *)

val cfg_to_dot : Cfg.t -> string
(** Graphviz rendering of one function's CFG: one node per basic block
    (labelled with its instructions), solid edges for branches, dashed for
    fall-through, bold for jump-table dispatch. *)

val section_summary : Icfg_obj.Binary.t -> string
(** One line per section: name, range, permissions, size. *)
