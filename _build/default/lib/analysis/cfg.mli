(** Control-flow graph construction by control-flow traversal.

    Instructions are discovered by following edges from the function entry
    (plus any [extra_targets], e.g. resolved jump-table targets), never by
    linear sweep — so data embedded in code (ppc64le jump tables) is not
    decoded as instructions, exactly as the paper requires to drop
    Assumption 1 of section 5.1. Basic blocks have incoming control flow
    only at their start address (section 4.1's CFG definition). *)

type edge_kind =
  | E_fallthrough  (** next instruction after a conditional branch or call *)
  | E_branch  (** direct jump or taken conditional *)
  | E_jump_table of int  (** resolved indirect-jump edge via the table at [addr] *)

type block = {
  b_start : int;
  b_end : int;  (** exclusive *)
  b_insns : (int * Icfg_isa.Insn.t * int) list;  (** (addr, insn, length) *)
}

type t = {
  fsym : Icfg_obj.Symbol.t;
  blocks : block list;  (** sorted by start address *)
  succs : (int, (int * edge_kind) list) Hashtbl.t;  (** keyed by block start *)
  preds : (int, int list) Hashtbl.t;
  calls : (int * int option) list;
      (** (call-site, callee entry); [None] for indirect calls *)
  ind_jumps : int list;  (** indirect-jump instruction addresses *)
  tail_targets : int list;
      (** direct branches leaving the function (direct tail calls) *)
}

val build :
  ?extra_targets:int list ->
  ?jump_table_edges:(int * int list) list ->
  Icfg_obj.Binary.t ->
  Icfg_obj.Symbol.t ->
  t
(** Build the CFG of one function. [extra_targets] adds block leaders (e.g.
    pointer-derived targets); [jump_table_edges] maps an indirect-jump
    address to its resolved targets, adding [E_jump_table] edges. *)

val block_at : t -> int -> block option
(** The block starting exactly at the address. *)

val block_containing : t -> int -> block option
val entry_block : t -> block
val successors : t -> int -> (int * edge_kind) list
val predecessors : t -> int -> int list

val covered_ranges : t -> (int * int) list
(** Byte ranges occupied by discovered instructions, merged and sorted; the
    complement within the function range is its {e gaps} (used by the
    indirect-tail-call layout heuristic of section 5.1). *)

val gaps : t -> (int * int) list

val terminator : block -> (int * Icfg_isa.Insn.t * int) option
(** The block's last instruction if it is a control-flow instruction. *)

val pp : Format.formatter -> t -> unit
